//! A process-wide, content-keyed store of materialised workload traces.
//!
//! Every simulation used to expand its `(app, seed, instructions)` trace
//! from the generator on the spot — once per scheme, per figure, per
//! campaign trial and per worker thread, even though the expansion is a
//! pure function of the key. The [`WorkloadStore`] materialises each
//! distinct trace exactly once behind an `Arc<[Inst]>` and hands the same
//! allocation to every caller, across threads:
//!
//! * equal keys return pointer-equal traces (`Arc::ptr_eq`);
//! * distinct keys return distinct traces;
//! * concurrent first requests for one key generate it once — late
//!   arrivals block on the winner instead of duplicating the work.
//!
//! ```
//! use icr_trace::store;
//!
//! let a = store::global().get("gzip", 42, 1_000);
//! let b = store::global().get("gzip", 42, 1_000);
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(a.len(), 1_000);
//! ```

use crate::apps;
use crate::generator::TraceGenerator;
use crate::inst::Inst;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The identity of a materialised trace. Two keys are equal exactly when
/// the traces they name are equal, because generation is a pure function
/// of `(app profile, seed)` truncated to `instructions`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Application name (one of [`crate::apps::APP_NAMES`] or
    /// [`crate::apps::EXTENDED_APP_NAMES`]).
    pub app: String,
    /// Generator seed.
    pub seed: u64,
    /// Dynamic instructions materialised.
    pub instructions: u64,
}

/// The borrowed view both [`TraceKey`] and the stack-only probe key
/// present to the map, so a lookup never allocates a `String`.
///
/// The `Hash` impl for `dyn KeyView` must feed the hasher exactly the
/// byte stream `#[derive(Hash)]` produces for `TraceKey` (app as `str`,
/// then the two `u64`s in field order) — the map hashes stored keys
/// through the derive and probe keys through the trait object.
trait KeyView {
    fn app(&self) -> &str;
    fn seed(&self) -> u64;
    fn instructions(&self) -> u64;
}

impl KeyView for TraceKey {
    fn app(&self) -> &str {
        &self.app
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// A `(app, seed, instructions)` probe that borrows its app name.
struct KeyRef<'a> {
    app: &'a str,
    seed: u64,
    instructions: u64,
}

impl KeyView for KeyRef<'_> {
    fn app(&self) -> &str {
        self.app
    }
    fn seed(&self) -> u64 {
        self.seed
    }
    fn instructions(&self) -> u64 {
        self.instructions
    }
}

impl Hash for dyn KeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.app().hash(state);
        self.seed().hash(state);
        self.instructions().hash(state);
    }
}

impl PartialEq for dyn KeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.app() == other.app()
            && self.seed() == other.seed()
            && self.instructions() == other.instructions()
    }
}

impl Eq for dyn KeyView + '_ {}

impl<'a> Borrow<dyn KeyView + 'a> for TraceKey {
    fn borrow(&self) -> &(dyn KeyView + 'a) {
        self
    }
}

/// An alternative trace producer consulted on a store miss before the
/// synthetic [`TraceGenerator`] fallback — the seam through which the
/// `icr-isa` interpreter feeds `isa:<kernel>` app names into the same
/// store (and the same downstream machinery) as the synthetic eight,
/// without `icr-trace` depending on the interpreter crate.
pub trait WorkloadSource: Send + Sync {
    /// `true` when this source owns `app`.
    fn matches(&self, app: &str) -> bool;

    /// Produces the trace for `(app, seed)`, at most `instructions`
    /// long. Execution-driven sources may return fewer instructions than
    /// requested when the program retires to completion first.
    fn materialise(&self, app: &str, seed: u64, instructions: u64) -> Arc<[Inst]>;
}

/// Thread-safe store of materialised traces; see the module docs.
///
/// The store is unbounded: every distinct key stays resident for the
/// lifetime of the store. At the repo's experiment scale this is tens of
/// traces (a few hundred MB at the default 200k-instruction budget),
/// traded deliberately for never generating a trace twice.
/// A shared once-initialised slot for one trace: cloned out of the map so
/// materialisation runs without holding the map lock.
type TraceSlot = Arc<OnceLock<Arc<[Inst]>>>;

#[derive(Default)]
pub struct WorkloadStore {
    traces: Mutex<HashMap<TraceKey, TraceSlot>>,
    sources: Mutex<Vec<Arc<dyn WorkloadSource>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for WorkloadStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadStore")
            .field("traces", &self.len())
            .field("sources", &self.sources.lock().expect("not poisoned").len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl WorkloadStore {
    /// An empty store.
    pub fn new() -> Self {
        WorkloadStore::default()
    }

    /// Registers a [`WorkloadSource`]; on a miss, sources are consulted
    /// in registration order before the synthetic-generator fallback.
    /// Registering the same source twice is harmless but wasteful —
    /// guard process-wide installation with a `std::sync::Once`.
    pub fn register_source(&self, source: Arc<dyn WorkloadSource>) {
        self.sources.lock().expect("not poisoned").push(source);
    }

    /// The trace for `(app, seed, instructions)`, materialising it on
    /// first request and returning the shared allocation afterwards.
    /// Hits borrow the key — no allocation on the fast path.
    ///
    /// # Panics
    ///
    /// Panics on an application name that no registered source claims
    /// and [`apps::profile`] does not know.
    pub fn get(&self, app: &str, seed: u64, instructions: u64) -> Arc<[Inst]> {
        let probe = KeyRef {
            app,
            seed,
            instructions,
        };
        let slot = {
            let mut traces = self.traces.lock().expect("not poisoned");
            if let Some(slot) = traces.get(&probe as &dyn KeyView) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.clone()
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let slot: TraceSlot = Arc::new(OnceLock::new());
                traces.insert(
                    TraceKey {
                        app: app.to_owned(),
                        seed,
                        instructions,
                    },
                    slot.clone(),
                );
                slot
            }
        };
        // Materialise outside the map lock so one slow expansion cannot
        // serialise unrelated keys; concurrent requests for *this* key
        // block here until the winner finishes.
        slot.get_or_init(|| self.materialise(app, seed, instructions))
            .clone()
    }

    fn materialise(&self, app: &str, seed: u64, instructions: u64) -> Arc<[Inst]> {
        let source = {
            let sources = self.sources.lock().expect("not poisoned");
            sources.iter().find(|s| s.matches(app)).cloned()
        };
        match source {
            Some(source) => source.materialise(app, seed, instructions),
            None => TraceGenerator::new(apps::profile(app), seed)
                .take(instructions as usize)
                .collect(),
        }
    }

    /// `true` when [`get`](Self::get) can materialise `app`: a
    /// registered source claims it, or a synthetic profile exists. The
    /// CLIs validate `--app` arguments through this instead of a
    /// hard-coded name list, so the check can never drift from what the
    /// store actually serves.
    pub fn resolvable(&self, app: &str) -> bool {
        let claimed = {
            let sources = self.sources.lock().expect("not poisoned");
            sources.iter().any(|s| s.matches(app))
        };
        claimed || apps::try_profile(app).is_ok()
    }

    /// Fallible [`get`](Self::get): a typed [`apps::UnknownAppError`]
    /// instead of a panic when no registered source claims `app` and no
    /// synthetic profile exists. Traces already resident under the key
    /// (e.g. preloaded via [`insert`](Self::insert)) are returned
    /// regardless of resolvability.
    pub fn try_get(
        &self,
        app: &str,
        seed: u64,
        instructions: u64,
    ) -> Result<Arc<[Inst]>, apps::UnknownAppError> {
        {
            let probe = KeyRef {
                app,
                seed,
                instructions,
            };
            let traces = self.traces.lock().expect("not poisoned");
            if let Some(trace) = traces.get(&probe as &dyn KeyView).and_then(|s| s.get()) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(trace.clone());
            }
        }
        if !self.resolvable(app) {
            return Err(apps::UnknownAppError {
                name: app.to_owned(),
            });
        }
        Ok(self.get(app, seed, instructions))
    }

    /// Preloads a trace under `(app, seed, instructions)` — the seam
    /// `icr-run --trace-in` uses to replay a stored file instead of
    /// regenerating. Returns `false` without touching the store when a
    /// trace is already resident under that key (replay never silently
    /// replaces live data).
    pub fn insert(&self, app: &str, seed: u64, instructions: u64, trace: Arc<[Inst]>) -> bool {
        let mut traces = self.traces.lock().expect("not poisoned");
        let probe = KeyRef {
            app,
            seed,
            instructions,
        };
        if let Some(slot) = traces.get(&probe as &dyn KeyView) {
            // Key known: fill the slot only if no one materialised yet.
            return slot.set(trace).is_ok();
        }
        let slot: TraceSlot = Arc::new(OnceLock::new());
        slot.set(trace).expect("freshly created slot is empty");
        traces.insert(
            TraceKey {
                app: app.to_owned(),
                seed,
                instructions,
            },
            slot,
        );
        true
    }

    /// Lookups that found an already-requested key.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to materialise a new trace.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct traces resident.
    pub fn len(&self) -> usize {
        self.traces.lock().expect("not poisoned").len()
    }

    /// `true` when no trace has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held by resident traces (instruction payload only).
    pub fn resident_bytes(&self) -> usize {
        self.traces
            .lock()
            .expect("not poisoned")
            .values()
            .filter_map(|slot| slot.get())
            .map(|t| t.len() * std::mem::size_of::<Inst>())
            .sum()
    }
}

/// The process-wide store every simulation shares.
pub fn global() -> &'static WorkloadStore {
    static STORE: OnceLock<WorkloadStore> = OnceLock::new();
    STORE.get_or_init(WorkloadStore::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_share_one_allocation() {
        let store = WorkloadStore::new();
        let a = store.get("gzip", 1, 500);
        let b = store.get("gzip", 1, 500);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_traces() {
        let store = WorkloadStore::new();
        let base = store.get("gzip", 1, 500);
        for (app, seed, n) in [("gzip", 2, 500), ("vpr", 1, 500), ("gzip", 1, 400)] {
            let other = store.get(app, seed, n);
            assert!(!Arc::ptr_eq(&base, &other), "{app}/{seed}/{n}");
        }
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn store_matches_direct_generation() {
        let store = WorkloadStore::new();
        let stored = store.get("mcf", 7, 2_000);
        let direct: Vec<Inst> = TraceGenerator::new(apps::profile("mcf"), 7)
            .take(2_000)
            .collect();
        assert_eq!(&stored[..], &direct[..]);
    }

    #[test]
    fn concurrent_first_requests_materialise_once() {
        let store = WorkloadStore::new();
        let traces: Vec<Arc<[Inst]>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| store.get("parser", 3, 1_000)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits() + store.misses(), 8);
    }

    #[test]
    fn resident_bytes_counts_payload() {
        let store = WorkloadStore::new();
        store.get("art", 1, 100);
        assert_eq!(store.resident_bytes(), 100 * std::mem::size_of::<Inst>());
    }

    #[test]
    fn borrowed_probe_and_owned_key_hash_identically() {
        // The dyn-KeyView Borrow probe only works if its Hash matches the
        // derive on TraceKey byte-for-byte; exercise it across apps with
        // shared prefixes and keys differing in each field.
        let store = WorkloadStore::new();
        for (app, seed, n) in [
            ("gzip", 1, 50),
            ("gzip", 2, 50),
            ("gzip", 1, 60),
            ("gcc", 1, 50),
            ("g", 1, 50u64),
        ] {
            if app == "g" {
                continue; // no such profile; key shapes above suffice
            }
            let first = store.get(app, seed, n);
            let again = store.get(app, seed, n);
            assert!(Arc::ptr_eq(&first, &again), "{app}/{seed}/{n} must hit");
        }
        assert_eq!(store.hits(), 4);
        assert_eq!(store.misses(), 4);
    }

    #[test]
    fn insert_preloads_and_refuses_overwrite() {
        let store = WorkloadStore::new();
        let canned: Arc<[Inst]> = store.get("gzip", 1, 50);

        // Fresh key: preload wins, and get() returns the preloaded trace.
        assert!(store.insert("vpr", 9, 50, canned.clone()));
        let got = store.get("vpr", 9, 50);
        assert!(Arc::ptr_eq(&got, &canned));

        // Resident key: refused, resident data untouched.
        assert!(!store.insert("gzip", 1, 50, store.get("mcf", 1, 50)));
        assert!(Arc::ptr_eq(&store.get("gzip", 1, 50), &canned));
    }

    struct Canned;

    impl WorkloadSource for Canned {
        fn matches(&self, app: &str) -> bool {
            app.starts_with("canned:")
        }
        fn materialise(&self, _app: &str, seed: u64, instructions: u64) -> Arc<[Inst]> {
            // A recognisably non-synthetic trace: `seed` ALU ops capped
            // at the request.
            (0..instructions.min(seed))
                .map(|i| {
                    Inst::alu(
                        0x40_0000 + 4 * i,
                        crate::inst::OpClass::IntAlu,
                        crate::inst::Reg(1),
                        [None, None],
                    )
                })
                .collect()
        }
    }

    #[test]
    fn sources_intercept_their_apps_and_may_run_short() {
        let store = WorkloadStore::new();
        store.register_source(Arc::new(Canned));
        let t = store.get("canned:x", 3, 100);
        assert_eq!(t.len(), 3, "execution-driven traces may end early");
        // Non-matching apps still fall through to the generator.
        assert_eq!(store.get("gzip", 1, 50).len(), 50);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unclaimed_app_still_panics() {
        WorkloadStore::new().get("isa:no-source-registered", 1, 10);
    }

    #[test]
    fn try_get_reports_unknown_apps_without_aborting() {
        // Regression: an unknown app used to be reachable only through
        // the panicking get(), turning a bad --app into an abort (exit
        // 101) instead of a routable error.
        let store = WorkloadStore::new();
        let err = store.try_get("doom", 1, 10).unwrap_err();
        assert_eq!(err.name, "doom");
        assert!(err.to_string().contains("unknown application"));
        assert!(!store.resolvable("doom"));

        // Resolvable names behave exactly like get().
        assert!(store.resolvable("gzip"));
        let a = store.try_get("gzip", 1, 50).expect("profiled app");
        let b = store.get("gzip", 1, 50);
        assert!(Arc::ptr_eq(&a, &b));

        // A registered source makes its names resolvable...
        store.register_source(Arc::new(Canned));
        assert!(store.resolvable("canned:x"));
        assert_eq!(store.try_get("canned:x", 3, 100).unwrap().len(), 3);
        // ...and unclaimed isa:* names stay typed errors, not panics.
        let isa = store
            .try_get("isa:no-source-registered", 1, 10)
            .unwrap_err();
        assert!(isa.is_execution_driven());
    }

    #[test]
    fn try_get_serves_preloaded_traces_even_when_unresolvable() {
        let store = WorkloadStore::new();
        let canned: Arc<[Inst]> = store.get("gzip", 1, 50);
        assert!(store.insert("replayed:only", 9, 50, canned.clone()));
        let got = store
            .try_get("replayed:only", 9, 50)
            .expect("resident trace must be served");
        assert!(Arc::ptr_eq(&got, &canned));
    }
}
