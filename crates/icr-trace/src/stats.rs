//! Summary statistics over a trace prefix — used to sanity-check that the
//! generators actually produce the mixes and localities their profiles
//! promise (calibration tests), and handy for workload characterisation in
//! examples.

use crate::inst::{Inst, OpClass};
use std::collections::HashSet;

/// Aggregate statistics of a finite instruction stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Instructions observed.
    pub instructions: u64,
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Branches observed.
    pub branches: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Distinct 64-byte data blocks touched.
    pub unique_data_blocks: u64,
    /// Distinct instruction addresses fetched.
    pub unique_pcs: u64,
}

impl TraceStats {
    /// Collects statistics from an instruction stream.
    pub fn collect<I: IntoIterator<Item = Inst>>(trace: I) -> Self {
        let mut s = TraceStats::default();
        let mut blocks = HashSet::new();
        let mut pcs = HashSet::new();
        for inst in trace {
            s.instructions += 1;
            pcs.insert(inst.pc);
            match inst.op {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::Branch => {
                    s.branches += 1;
                    if inst.taken {
                        s.taken_branches += 1;
                    }
                }
                _ => {}
            }
            if let Some(a) = inst.mem_addr {
                blocks.insert(a / 64);
            }
        }
        s.unique_data_blocks = blocks.len() as u64;
        s.unique_pcs = pcs.len() as u64;
        s
    }

    /// Fraction of instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Fraction of instructions that are stores.
    pub fn store_fraction(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Fraction of instructions that are branches.
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.branches)
    }

    /// Fraction of branches that are taken (0 when there are none).
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            n as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{self, APP_NAMES};
    use crate::generator::TraceGenerator;

    #[test]
    fn empty_trace_gives_zeroes() {
        let s = TraceStats::collect(std::iter::empty());
        assert_eq!(s.instructions, 0);
        assert_eq!(s.load_fraction(), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
    }

    /// Calibration: each generator realises its profile's instruction mix
    /// to within a couple of percentage points.
    #[test]
    fn generators_realise_their_op_mix() {
        for name in APP_NAMES {
            let p = apps::profile(name);
            let s = TraceStats::collect(TraceGenerator::new(p.clone(), 1).take(200_000));
            let tol = 0.03;
            assert!(
                (s.load_fraction() - p.mix.load).abs() < tol,
                "{name}: loads {:.3} vs {:.3}",
                s.load_fraction(),
                p.mix.load
            );
            assert!(
                (s.store_fraction() - p.mix.store).abs() < tol,
                "{name}: stores {:.3} vs {:.3}",
                s.store_fraction(),
                p.mix.store
            );
            assert!(
                (s.branch_fraction() - p.mix.branch).abs() < tol,
                "{name}: branches {:.3} vs {:.3}",
                s.branch_fraction(),
                p.mix.branch
            );
        }
    }

    /// Calibration: footprints order the way the profiles intend — mcf
    /// touches the most blocks, and every app exceeds the 256-block dL1.
    #[test]
    fn footprints_are_ordered_sensibly() {
        let mut footprints = std::collections::HashMap::new();
        for name in APP_NAMES {
            let s = TraceStats::collect(TraceGenerator::new(apps::profile(name), 1).take(100_000));
            footprints.insert(name, s.unique_data_blocks);
        }
        let mcf = footprints["mcf"];
        for (name, &fp) in &footprints {
            assert!(fp > 256, "{name} footprint {fp} should exceed the dL1");
            if *name != "mcf" {
                assert!(mcf > fp, "mcf ({mcf}) should out-spread {name} ({fp})");
            }
        }
    }
}
