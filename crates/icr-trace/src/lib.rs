//! Synthetic SPEC2000-like workload generators for the ICR reproduction.
//!
//! The paper drives its SimpleScalar machine with eight SPEC2000
//! applications for 500M instructions each. SPEC binaries and a PISA/Alpha
//! front-end are out of scope for a from-scratch reproduction, so this
//! crate substitutes *profile-driven synthetic traces*: each application is
//! characterised by an instruction mix, a three-tier data working set
//! (hot/warm/cold), streaming vs pointer-chasing cold behaviour, and branch
//! predictability ([`AppProfile`]); a seeded generator
//! ([`TraceGenerator`]) expands a profile into a deterministic dynamic
//! instruction stream.
//!
//! What matters for ICR is preserved by construction:
//!
//! * hot data is a small set of blocks referenced constantly — these are
//!   the blocks ICR automatically replicates;
//! * footprints exceed the 16KB dL1, so dead blocks exist to hold
//!   replicas;
//! * mcf pointer-chases a huge region (worst locality, Fig. 7/8 behaviour)
//!   while mesa's working set is cache-scale (Fig. 4 behaviour).
//!
//! ```
//! use icr_trace::{apps, TraceGenerator, TraceStats};
//!
//! let stats = TraceStats::collect(
//!     TraceGenerator::new(apps::profile("mcf"), 42).take(10_000),
//! );
//! assert!(stats.unique_data_blocks > 256); // spills the 256-block dL1
//! ```

pub mod apps;
pub mod disk;
pub mod generator;
pub mod inst;
pub mod profile;
pub mod stats;
pub mod store;

pub use disk::{DiskError, StoredTrace, TraceReader, TraceWriter};
pub use generator::{TraceGenerator, INST_BYTES};
pub use inst::{Inst, OpClass, Reg};
pub use profile::{AppProfile, BranchProfile, LocalityProfile, OpMix};
pub use stats::TraceStats;
pub use store::{TraceKey, WorkloadSource, WorkloadStore};
