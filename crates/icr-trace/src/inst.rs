//! The dynamic-instruction record that flows from a workload generator into
//! the out-of-order timing model.

/// Operation class, mirroring the functional-unit classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (1-cycle, 4 units in the paper's machine).
    IntAlu,
    /// Integer multiply/divide (long latency, 1 unit).
    IntMul,
    /// Floating-point add/compare (2-cycle, 4 units).
    FpAlu,
    /// Floating-point multiply/divide (long latency, 1 unit).
    FpMul,
    /// Memory load (issues through the LSQ to the dL1).
    Load,
    /// Memory store (issues through the LSQ; retires via a write buffer).
    Store,
    /// Conditional branch (resolved at execute; mispredictions flush).
    Branch,
}

impl OpClass {
    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// An architectural register name. The machine has 32 integer + 32 FP
/// registers; the generator hands out indices `0..64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// One dynamic instruction.
///
/// This is a *timing* record: it names the registers it reads/writes (for
/// dependence tracking), the memory address it touches (for the cache
/// model), and its branch outcome (for the predictor) — everything
/// `sim-outorder` would extract from a real instruction, minus the
/// semantics the reliability study doesn't need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Fetch address of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the op writes one.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// For branches: whether the branch is taken.
    pub taken: bool,
    /// For branches: the target when taken.
    pub target: u64,
}

impl Inst {
    /// A non-memory, non-branch op (helper for tests and examples).
    pub fn alu(pc: u64, op: OpClass, dest: Reg, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(!op.is_mem() && op != OpClass::Branch);
        Inst {
            pc,
            op,
            dest: Some(dest),
            srcs,
            mem_addr: None,
            taken: false,
            target: 0,
        }
    }

    /// A load of `addr` into `dest`.
    pub fn load(pc: u64, addr: u64, dest: Reg, base: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [base, None],
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A store of `src` to `addr`.
    pub fn store(pc: u64, addr: u64, src: Reg, base: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [Some(src), base],
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch at `pc` to `target`, `taken` or not.
    pub fn branch(pc: u64, target: u64, taken: bool, src: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [src, None],
            mem_addr: None,
            taken,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_mem_predicate() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = Inst::load(0x100, 0x2000, Reg(3), Some(Reg(4)));
        assert_eq!(ld.op, OpClass::Load);
        assert_eq!(ld.mem_addr, Some(0x2000));
        assert_eq!(ld.dest, Some(Reg(3)));

        let st = Inst::store(0x104, 0x2008, Reg(3), None);
        assert_eq!(st.op, OpClass::Store);
        assert_eq!(st.dest, None);
        assert_eq!(st.srcs[0], Some(Reg(3)));

        let br = Inst::branch(0x108, 0x80, true, Some(Reg(1)));
        assert!(br.taken);
        assert_eq!(br.target, 0x80);
    }
}
