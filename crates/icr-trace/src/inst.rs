//! The dynamic-instruction record that flows from a workload generator into
//! the out-of-order timing model.

/// Operation class, mirroring the functional-unit classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (1-cycle, 4 units in the paper's machine).
    IntAlu,
    /// Integer multiply/divide (long latency, 1 unit).
    IntMul,
    /// Floating-point add/compare (2-cycle, 4 units).
    FpAlu,
    /// Floating-point multiply/divide (long latency, 1 unit).
    FpMul,
    /// Memory load (issues through the LSQ to the dL1).
    Load,
    /// Memory store (issues through the LSQ; retires via a write buffer).
    Store,
    /// Conditional branch (resolved at execute; mispredictions flush).
    Branch,
}

impl OpClass {
    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// An architectural register name. The machine has 32 integer + 32 FP
/// registers; the generator hands out indices `0..64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// One dynamic instruction.
///
/// This is a *timing* record: it names the registers it reads/writes (for
/// dependence tracking), the memory address it touches (for the cache
/// model), and its branch outcome (for the predictor) — everything
/// `sim-outorder` would extract from a real instruction, minus the
/// semantics the reliability study doesn't need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Fetch address of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the op writes one.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// For branches: whether the branch is taken.
    pub taken: bool,
    /// For branches: the target when taken.
    pub target: u64,
}

impl Inst {
    /// A non-memory, non-branch op (helper for tests and examples).
    pub fn alu(pc: u64, op: OpClass, dest: Reg, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(!op.is_mem() && op != OpClass::Branch);
        Inst {
            pc,
            op,
            dest: Some(dest),
            srcs,
            mem_addr: None,
            taken: false,
            target: 0,
        }
    }

    /// A load of `addr` into `dest`.
    pub fn load(pc: u64, addr: u64, dest: Reg, base: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [base, None],
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A store of `src` to `addr`.
    pub fn store(pc: u64, addr: u64, src: Reg, base: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [Some(src), base],
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch at `pc` to `target`, `taken` or not.
    pub fn branch(pc: u64, target: u64, taken: bool, src: Option<Reg>) -> Self {
        Inst {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [src, None],
            mem_addr: None,
            taken,
            target,
        }
    }
}

/// Highest architectural register index, exclusive: 32 integer + 32 FP.
pub const REG_LIMIT: u8 = 64;

/// Why an [`Inst`] violates the stream contract; see [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstError {
    /// A register index is ≥ [`REG_LIMIT`].
    RegOutOfRange {
        /// Which field held the bad index (`"dest"`, `"src0"`, `"src1"`).
        field: &'static str,
        /// The offending index.
        reg: u8,
    },
    /// A load or store with `mem_addr: None`.
    MemOpWithoutAddress(OpClass),
    /// A non-memory op carrying an effective address.
    AddressOnNonMemOp(OpClass),
    /// A non-branch with `taken` set or a nonzero `target`.
    BranchFieldsOnNonBranch(OpClass),
    /// A branch whose `target` is zero (no code lives at address 0).
    BranchWithoutTarget,
}

impl std::fmt::Display for InstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstError::RegOutOfRange { field, reg } => {
                write!(f, "{field} register index {reg} is outside 0..{REG_LIMIT}")
            }
            InstError::MemOpWithoutAddress(op) => {
                write!(f, "{op:?} carries no effective address")
            }
            InstError::AddressOnNonMemOp(op) => {
                write!(
                    f,
                    "{op:?} is not a memory op but carries an effective address"
                )
            }
            InstError::BranchFieldsOnNonBranch(op) => {
                write!(f, "{op:?} is not a branch but has taken/target set")
            }
            InstError::BranchWithoutTarget => write!(f, "branch with target 0"),
        }
    }
}

impl std::error::Error for InstError {}

/// Checks the invariants every trace producer — the synthetic
/// [`crate::generator::TraceGenerator`], the `icr-isa` interpreter, and
/// the on-disk reader in [`crate::disk`] — must uphold before handing an
/// instruction to the timing model:
///
/// * every named register index is `< 64` (32 integer + 32 FP);
/// * loads and stores carry `mem_addr`; nothing else does;
/// * only branches set `taken`/`target`, and a branch's `target` is
///   nonzero (jumps and conditional branches both record the
///   would-be-taken target).
///
/// Branches *may* write a destination register (a RISC-V `jal ra, f`
/// links), so `dest` is unconstrained beyond the index range.
pub fn validate(inst: &Inst) -> Result<(), InstError> {
    for (field, reg) in [
        ("dest", inst.dest),
        ("src0", inst.srcs[0]),
        ("src1", inst.srcs[1]),
    ] {
        if let Some(Reg(r)) = reg {
            if r >= REG_LIMIT {
                return Err(InstError::RegOutOfRange { field, reg: r });
            }
        }
    }
    if inst.op.is_mem() {
        if inst.mem_addr.is_none() {
            return Err(InstError::MemOpWithoutAddress(inst.op));
        }
    } else if inst.mem_addr.is_some() {
        return Err(InstError::AddressOnNonMemOp(inst.op));
    }
    if inst.op == OpClass::Branch {
        if inst.target == 0 {
            return Err(InstError::BranchWithoutTarget);
        }
    } else if inst.taken || inst.target != 0 {
        return Err(InstError::BranchFieldsOnNonBranch(inst.op));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_mem_predicate() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = Inst::load(0x100, 0x2000, Reg(3), Some(Reg(4)));
        assert_eq!(ld.op, OpClass::Load);
        assert_eq!(ld.mem_addr, Some(0x2000));
        assert_eq!(ld.dest, Some(Reg(3)));

        let st = Inst::store(0x104, 0x2008, Reg(3), None);
        assert_eq!(st.op, OpClass::Store);
        assert_eq!(st.dest, None);
        assert_eq!(st.srcs[0], Some(Reg(3)));

        let br = Inst::branch(0x108, 0x80, true, Some(Reg(1)));
        assert!(br.taken);
        assert_eq!(br.target, 0x80);
    }

    #[test]
    fn constructors_validate() {
        validate(&Inst::alu(
            0x100,
            OpClass::IntAlu,
            Reg(5),
            [Some(Reg(1)), None],
        ))
        .unwrap();
        validate(&Inst::load(0x100, 0x2000, Reg(3), Some(Reg(4)))).unwrap();
        validate(&Inst::store(0x104, 0x2008, Reg(3), None)).unwrap();
        validate(&Inst::branch(0x108, 0x80, true, Some(Reg(1)))).unwrap();
    }

    #[test]
    fn validate_rejects_each_broken_invariant() {
        let mut bad_reg = Inst::alu(0, OpClass::IntAlu, Reg(64), [None, None]);
        assert_eq!(
            validate(&bad_reg),
            Err(InstError::RegOutOfRange {
                field: "dest",
                reg: 64
            })
        );
        bad_reg.dest = Some(Reg(2));
        bad_reg.srcs[1] = Some(Reg(200));
        assert_eq!(
            validate(&bad_reg),
            Err(InstError::RegOutOfRange {
                field: "src1",
                reg: 200
            })
        );

        let mut no_addr = Inst::load(0, 0x2000, Reg(1), None);
        no_addr.mem_addr = None;
        assert_eq!(
            validate(&no_addr),
            Err(InstError::MemOpWithoutAddress(OpClass::Load))
        );

        let mut stray_addr = Inst::alu(0, OpClass::FpMul, Reg(40), [None, None]);
        stray_addr.mem_addr = Some(0x2000);
        assert_eq!(
            validate(&stray_addr),
            Err(InstError::AddressOnNonMemOp(OpClass::FpMul))
        );

        let mut stray_taken = Inst::alu(0, OpClass::IntAlu, Reg(1), [None, None]);
        stray_taken.taken = true;
        assert_eq!(
            validate(&stray_taken),
            Err(InstError::BranchFieldsOnNonBranch(OpClass::IntAlu))
        );

        let untargeted = Inst::branch(0x100, 0, false, None);
        assert_eq!(validate(&untargeted), Err(InstError::BranchWithoutTarget));
    }
}
