//! The eight SPEC2000 stand-ins the experiments run.
//!
//! The paper evaluates "eight applications from the Spec2000 suite" and its
//! figures name `gzip, vpr, gcc, mcf, parser, mesa, vortex` plus averages;
//! we complete the set with `art`. Profiles are tuned so that, against the
//! paper's 16KB/4-way/64B dL1 (256 blocks), the *relative* behaviours the
//! paper leans on hold:
//!
//! * **mcf** — pointer chasing over a footprint ≫ cache: very poor
//!   locality, the highest miss rate, so replica-induced evictions cost
//!   nothing (Fig. 8) and nearly every load's block was recently installed
//!   and replicated (Fig. 7: ≈ complete duplication under LS);
//! * **mesa** — working set comparable to the cache, so extra replicas
//!   visibly displace useful blocks (Fig. 4: miss rate nearly doubles with
//!   two replicas);
//! * **gzip/gcc/parser/vortex/vpr** — conventional integer codes with a
//!   hot kernel that gets automatically replicated;
//! * **art** — FP streaming with a modest hot set.

use crate::profile::{AppProfile, BranchProfile, LocalityProfile, OpMix};

/// Names of the eight applications, in the order figures print them.
pub const APP_NAMES: [&str; 8] = [
    "gzip", "vpr", "gcc", "mcf", "parser", "mesa", "vortex", "art",
];

/// Execution-driven RISC-V kernels served by the `icr-isa` interpreter
/// through the [`crate::store::WorkloadSource`] seam. These names have no
/// synthetic profile — [`profile`] panics on them; resolve them through
/// [`crate::store::global`] after the interpreter crate has installed its
/// source.
pub const ISA_APP_NAMES: [&str; 7] = [
    "isa:bubble",
    "isa:qsort",
    "isa:matmul",
    "isa:chase",
    "isa:strsearch",
    "isa:lz",
    "isa:checksum",
];

/// Additional workloads beyond the paper's eight: four more SPEC2000
/// stand-ins for robustness studies (`bzip2, twolf, crafty, gap`) plus
/// the execution-driven [`ISA_APP_NAMES`] kernels.
pub const EXTENDED_APP_NAMES: [&str; 11] = [
    "bzip2",
    "twolf",
    "crafty",
    "gap",
    "isa:bubble",
    "isa:qsort",
    "isa:matmul",
    "isa:chase",
    "isa:strsearch",
    "isa:lz",
    "isa:checksum",
];

/// An application name no synthetic profile exists for — either a name
/// nobody knows, or an `isa:*` workload that must resolve through a
/// registered [`crate::store::WorkloadSource`] instead of a profile.
///
/// CLIs map this to their exit-2 invalid-invocation contract; only the
/// infallible [`profile`] wrapper still panics, with the same messages
/// it always printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAppError {
    /// The offending application name.
    pub name: String,
}

impl UnknownAppError {
    /// `true` when the name is a syntactically-valid `isa:*` workload
    /// that simply has no *synthetic* profile (it may still resolve
    /// through the workload store once the interpreter is installed).
    pub fn is_execution_driven(&self) -> bool {
        self.name.starts_with("isa:")
    }
}

impl std::fmt::Display for UnknownAppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_execution_driven() {
            write!(
                f,
                "unknown application profile {:?}: isa:* workloads are execution-driven; \
                 resolve them through the WorkloadStore after icr_isa::install()",
                self.name
            )
        } else {
            write!(
                f,
                "unknown application {:?}; expected one of {APP_NAMES:?} or {EXTENDED_APP_NAMES:?}",
                self.name
            )
        }
    }
}

impl std::error::Error for UnknownAppError {}

/// Builds the profile for one application by name, or a typed
/// [`UnknownAppError`] for names with no synthetic profile.
pub fn try_profile(name: &str) -> Result<AppProfile, UnknownAppError> {
    let p = match name {
        "gzip" => gzip(),
        "vpr" => vpr(),
        "gcc" => gcc(),
        "mcf" => mcf(),
        "parser" => parser(),
        "mesa" => mesa(),
        "vortex" => vortex(),
        "art" => art(),
        "bzip2" => bzip2(),
        "twolf" => twolf(),
        "crafty" => crafty(),
        "gap" => gap(),
        other => {
            return Err(UnknownAppError {
                name: other.to_owned(),
            })
        }
    };
    debug_assert!(p.validate().is_ok(), "built-in profile must validate");
    Ok(p)
}

/// Builds the profile for one application by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`APP_NAMES`] or the synthetic part of
/// [`EXTENDED_APP_NAMES`] — in particular, `isa:*` workloads are
/// execution-driven and have no profile. Fallible callers (anything a
/// CLI argument can reach) should use [`try_profile`] and map the error
/// to their usage contract.
pub fn profile(name: &str) -> AppProfile {
    try_profile(name).unwrap_or_else(|e| panic!("{e}"))
}

/// All eight profiles, in [`APP_NAMES`] order.
pub fn all_profiles() -> Vec<AppProfile> {
    APP_NAMES.iter().map(|n| profile(n)).collect()
}

fn base(name: &str, mix: OpMix, locality: LocalityProfile, branch: BranchProfile) -> AppProfile {
    AppProfile {
        name: name.to_owned(),
        mix,
        locality,
        branch,
        data_base: 0x1000_0000,
        code_base: 0x0040_0000,
    }
}

fn gzip() -> AppProfile {
    // Compression: strided streaming over buffers plus a hot dictionary.
    base(
        "gzip",
        OpMix {
            load: 0.22,
            store: 0.12,
            branch: 0.13,
            int_alu: 0.50,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 64,
            warm_blocks: 224,
            cold_blocks: 8192,
            p_hot: 0.80,
            p_warm: 0.14,
            stride_fraction: 0.90,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.05,
            warm_dwell: 48,
            hot_confined: false,
        },
        BranchProfile {
            sites: 256,
            taken_rate: 0.62,
            predictability: 0.90,
        },
    )
}

fn vpr() -> AppProfile {
    // Place & route: hot netlist structures, moderate spread.
    base(
        "vpr",
        OpMix {
            load: 0.26,
            store: 0.09,
            branch: 0.14,
            int_alu: 0.42,
            int_mul: 0.01,
            fp_alu: 0.06,
            fp_mul: 0.02,
        },
        LocalityProfile {
            hot_blocks: 80,
            warm_blocks: 208,
            cold_blocks: 8192,
            p_hot: 0.82,
            p_warm: 0.14,
            stride_fraction: 0.50,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.2,
            warm_dwell: 32,
            hot_confined: true,
        },
        BranchProfile {
            sites: 512,
            taken_rate: 0.55,
            predictability: 0.78,
        },
    )
}

fn gcc() -> AppProfile {
    // Compiler: big code and data footprints, branchy.
    base(
        "gcc",
        OpMix {
            load: 0.25,
            store: 0.11,
            branch: 0.17,
            int_alu: 0.44,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 96,
            warm_blocks: 288,
            cold_blocks: 16384,
            p_hot: 0.78,
            p_warm: 0.16,
            stride_fraction: 0.55,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.06,
            warm_dwell: 24,
            hot_confined: false,
        },
        BranchProfile {
            sites: 2048,
            taken_rate: 0.58,
            predictability: 0.72,
        },
    )
}

fn mcf() -> AppProfile {
    // Network-simplex pointer chasing: footprint >> cache, awful locality.
    base(
        "mcf",
        OpMix {
            load: 0.33,
            store: 0.09,
            branch: 0.15,
            int_alu: 0.41,
            int_mul: 0.01,
            fp_alu: 0.005,
            fp_mul: 0.005,
        },
        LocalityProfile {
            hot_blocks: 48,
            warm_blocks: 8192,
            cold_blocks: 131_072,
            p_hot: 0.58,
            p_warm: 0.28,
            stride_fraction: 0.05,
            pointer_chase: true,
            store_hot_bias: 1.0,
            store_reuse: 0.32,
            warm_dwell: 8,
            hot_confined: true,
        },
        BranchProfile {
            sites: 192,
            taken_rate: 0.52,
            predictability: 0.65,
        },
    )
}

fn parser() -> AppProfile {
    // Link grammar parser: dictionary-heavy, decent locality.
    base(
        "parser",
        OpMix {
            load: 0.24,
            store: 0.10,
            branch: 0.16,
            int_alu: 0.47,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 72,
            warm_blocks: 224,
            cold_blocks: 8192,
            p_hot: 0.81,
            p_warm: 0.14,
            stride_fraction: 0.50,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.04,
            warm_dwell: 32,
            hot_confined: false,
        },
        BranchProfile {
            sites: 768,
            taken_rate: 0.56,
            predictability: 0.75,
        },
    )
}

fn mesa() -> AppProfile {
    // 3D rendering: FP pipeline whose working set just fits the cache, so
    // replica pressure shows up directly in the miss rate (Figure 4).
    base(
        "mesa",
        OpMix::fp_default(),
        LocalityProfile {
            hot_blocks: 80,
            warm_blocks: 128,
            cold_blocks: 4096,
            p_hot: 0.58,
            p_warm: 0.38,
            stride_fraction: 0.80,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.02,
            warm_dwell: 40,
            hot_confined: false,
        },
        BranchProfile {
            sites: 160,
            taken_rate: 0.70,
            predictability: 0.94,
        },
    )
}

fn vortex() -> AppProfile {
    // OO database: store-rich, mid-size working set.
    base(
        "vortex",
        OpMix {
            load: 0.25,
            store: 0.15,
            branch: 0.14,
            int_alu: 0.43,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 88,
            warm_blocks: 224,
            cold_blocks: 16384,
            p_hot: 0.81,
            p_warm: 0.14,
            stride_fraction: 0.45,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.06,
            warm_dwell: 32,
            hot_confined: false,
        },
        BranchProfile {
            sites: 1024,
            taken_rate: 0.60,
            predictability: 0.85,
        },
    )
}

fn art() -> AppProfile {
    // Neural-net image recognition: FP streaming over arrays that spill
    // the cache — the highest miss rate after mcf.
    base(
        "art",
        OpMix {
            load: 0.30,
            store: 0.07,
            branch: 0.08,
            int_alu: 0.26,
            int_mul: 0.01,
            fp_alu: 0.21,
            fp_mul: 0.07,
        },
        LocalityProfile {
            hot_blocks: 32,
            warm_blocks: 384,
            cold_blocks: 8192,
            p_hot: 0.50,
            p_warm: 0.34,
            stride_fraction: 0.92,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.02,
            warm_dwell: 12,
            hot_confined: false,
        },
        BranchProfile {
            sites: 96,
            taken_rate: 0.75,
            predictability: 0.95,
        },
    )
}

fn bzip2() -> AppProfile {
    // Block-sorting compression: large sequential buffers plus a hot
    // suffix-array working set.
    base(
        "bzip2",
        OpMix {
            load: 0.23,
            store: 0.11,
            branch: 0.12,
            int_alu: 0.51,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 72,
            warm_blocks: 256,
            cold_blocks: 16384,
            p_hot: 0.76,
            p_warm: 0.16,
            stride_fraction: 0.92,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.05,
            warm_dwell: 40,
            hot_confined: false,
        },
        BranchProfile {
            sites: 320,
            taken_rate: 0.60,
            predictability: 0.88,
        },
    )
}

fn twolf() -> AppProfile {
    // Standard-cell place & route: like vpr but with a larger, less
    // predictable netlist.
    base(
        "twolf",
        OpMix {
            load: 0.26,
            store: 0.09,
            branch: 0.15,
            int_alu: 0.41,
            int_mul: 0.01,
            fp_alu: 0.06,
            fp_mul: 0.02,
        },
        LocalityProfile {
            hot_blocks: 96,
            warm_blocks: 320,
            cold_blocks: 12288,
            p_hot: 0.76,
            p_warm: 0.17,
            stride_fraction: 0.30,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.10,
            warm_dwell: 28,
            hot_confined: true,
        },
        BranchProfile {
            sites: 640,
            taken_rate: 0.54,
            predictability: 0.72,
        },
    )
}

fn crafty() -> AppProfile {
    // Chess search: hot board/hash state, highly branchy, light on
    // stores.
    base(
        "crafty",
        OpMix {
            load: 0.27,
            store: 0.06,
            branch: 0.16,
            int_alu: 0.48,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 56,
            warm_blocks: 384,
            cold_blocks: 8192,
            p_hot: 0.80,
            p_warm: 0.15,
            stride_fraction: 0.20,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.03,
            warm_dwell: 36,
            hot_confined: false,
        },
        BranchProfile {
            sites: 1280,
            taken_rate: 0.55,
            predictability: 0.80,
        },
    )
}

fn gap() -> AppProfile {
    // Group-theory interpreter: pointer-rich heaps, moderate locality.
    base(
        "gap",
        OpMix {
            load: 0.28,
            store: 0.12,
            branch: 0.14,
            int_alu: 0.43,
            int_mul: 0.01,
            fp_alu: 0.01,
            fp_mul: 0.01,
        },
        LocalityProfile {
            hot_blocks: 88,
            warm_blocks: 448,
            cold_blocks: 16384,
            p_hot: 0.74,
            p_warm: 0.19,
            stride_fraction: 0.25,
            pointer_chase: false,
            store_hot_bias: 1.0,
            store_reuse: 0.08,
            warm_dwell: 20,
            hot_confined: false,
        },
        BranchProfile {
            sites: 896,
            taken_rate: 0.58,
            predictability: 0.78,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_profiles_validate() {
        let all = all_profiles();
        assert_eq!(all.len(), 8);
        for p in &all {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_match_order() {
        for (i, p) in all_profiles().iter().enumerate() {
            assert_eq!(p.name, APP_NAMES[i]);
        }
    }

    #[test]
    fn mcf_has_worst_locality() {
        let mcf = profile("mcf");
        assert!(mcf.locality.pointer_chase, "mcf pointer-chases");
        for name in APP_NAMES {
            if name == "mcf" {
                continue;
            }
            let other = profile(name);
            assert!(
                mcf.locality.cold_blocks > other.locality.cold_blocks,
                "mcf's cold footprint must be the largest (vs {name})"
            );
            assert!(
                !other.locality.pointer_chase,
                "only mcf pointer-chases (vs {name})"
            );
        }
    }

    #[test]
    fn mesa_working_set_is_cache_scale() {
        // The dL1 holds 256 blocks; mesa's hot+warm set should be in that
        // neighbourhood so replicas displace useful data.
        let mesa = profile("mesa");
        let core = mesa.locality.hot_blocks + mesa.locality.warm_blocks;
        assert!((180..=600).contains(&core), "got {core}");
    }

    #[test]
    fn extended_profiles_validate() {
        for name in EXTENDED_APP_NAMES {
            if name.starts_with("isa:") {
                continue; // execution-driven: no synthetic profile
            }
            profile(name)
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn isa_names_are_published_through_extended_names() {
        for name in ISA_APP_NAMES {
            assert!(name.starts_with("isa:"));
            assert!(
                EXTENDED_APP_NAMES.contains(&name),
                "{name} missing from EXTENDED_APP_NAMES"
            );
        }
        assert!(
            !APP_NAMES.iter().any(|n| n.starts_with("isa:")),
            "the default roster stays synthetic"
        );
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        profile("doom");
    }

    #[test]
    #[should_panic(expected = "execution-driven")]
    fn isa_app_has_no_profile() {
        profile("isa:bubble");
    }

    #[test]
    fn try_profile_returns_typed_errors_instead_of_aborting() {
        for name in APP_NAMES {
            assert!(try_profile(name).is_ok());
        }
        let err = try_profile("doom").unwrap_err();
        assert_eq!(err.name, "doom");
        assert!(!err.is_execution_driven());
        assert!(err.to_string().contains("unknown application"));
        let isa = try_profile("isa:bubble").unwrap_err();
        assert!(isa.is_execution_driven());
        assert!(isa.to_string().contains("execution-driven"));
    }
}
