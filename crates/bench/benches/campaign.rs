//! Checkpoint-overhead benchmark for the sharded campaign service:
//! time the same campaign shape through the sharded runner with
//! checkpointing off (in-memory only) and on (one digest-verified file
//! per shard), plus a pure resume pass over the completed checkpoint
//! set, and record shard throughput and the overhead to
//! `BENCH_campaign.json` at the repository root.
//!
//! ```text
//! make bench-campaign      # or: cargo bench -p icr-bench --bench campaign
//! ```
//!
//! Crash safety must be close to free or nobody leaves it on, so the
//! bench asserts the checkpointing leg stays within 5% of the
//! in-memory leg — the durability budget is checked every time this
//! target runs, with the recorded numbers making the margin visible in
//! review.
//!
//! Not a criterion target: the execution engine memoizes completed
//! cells process-wide, so repeated iterations of one campaign would
//! time the cache, not the work. Instead each repetition uses a fresh
//! master seed per leg (cold by construction) and the best-of-3
//! minimum is recorded, mirroring `BENCH_isa.json`; the `history`
//! array carries prior totals forward like `BENCH_all.json`.

use icr_core::Scheme;
use icr_sim::json::{esc, num};
use icr_sim::{run_sharded_campaign, CampaignSpec, ShardedCampaignSpec};
use std::time::Instant;

const REPS: usize = 3;
const TRIALS_PER_CELL: u64 = 300;
const SHARD_SIZE: u64 = 50;
const INSTRUCTIONS: u64 = 20_000;
const OVERHEAD_LIMIT_PCT: f64 = 5.0;
const HISTORY_KEEP: usize = 20;

/// One campaign shape per (leg, repetition), distinguished only by the
/// master seed: every leg must execute cold, and the engine memoizes on
/// the full configuration — seed included — so distinct seeds are what
/// keep the second leg from replaying the first leg's cache.
fn spec(master_seed: u64) -> ShardedCampaignSpec {
    let mut base = CampaignSpec::new(
        vec![Scheme::BASE_P, Scheme::ICR_P_PS_S],
        vec!["gzip".into(), "gcc".into()],
        TRIALS_PER_CELL,
        master_seed,
    );
    base.instructions = INSTRUCTIONS;
    ShardedCampaignSpec::new(base, SHARD_SIZE)
}

fn label() -> String {
    if let Ok(l) = std::env::var("ICR_BENCH_LABEL") {
        return l;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".into())
}

/// Extracts the `[...]` array following `"history":`, brackets included.
fn extract_history(doc: &str) -> Option<&str> {
    let at = doc.find("\"history\":[")? + "\"history\":".len();
    let rest = &doc[at..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits the comma-joined `{...}` entries of a flat history array.
fn split_history_entries(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in inner.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(inner[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    let scratch = std::env::temp_dir().join(format!("icr-bench-campaign-{}", std::process::id()));

    let total_trials =
        TRIALS_PER_CELL * spec(0).base.schemes.len() as u64 * spec(0).base.apps.len() as u64;
    let mut plain_s = f64::INFINITY;
    let mut ckpt_s = f64::INFINITY;
    let mut resume_s = f64::INFINITY;

    for rep in 0..REPS as u64 {
        // Leg 1: the sharded runner with no checkpoint directory — all
        // the shard machinery, none of the I/O. This is the baseline the
        // durability cost is measured against.
        let t = Instant::now();
        let report = run_sharded_campaign(&spec(1_000 + rep), None, false).expect("in-memory leg");
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        assert!(report.complete);

        // Leg 2: identical shape, one digest-verified checkpoint file
        // (write + fsync + rename + dir fsync) per completed shard.
        let dir = scratch.join(format!("rep{rep}"));
        let t = Instant::now();
        let report =
            run_sharded_campaign(&spec(2_000 + rep), Some(&dir), false).expect("checkpointed leg");
        ckpt_s = ckpt_s.min(t.elapsed().as_secs_f64());
        assert!(report.complete);
        let shards = report.shards_done;

        // Leg 3: resume over the finished set — every shard read back,
        // digest-verified, and skipped. The crash-recovery fast path.
        let t = Instant::now();
        let report =
            run_sharded_campaign(&spec(2_000 + rep), Some(&dir), true).expect("resume leg");
        resume_s = resume_s.min(t.elapsed().as_secs_f64());
        assert!(report.complete && report.shards_resumed == shards && report.quarantined == 0);
    }
    std::fs::remove_dir_all(&scratch).ok();

    let overhead_pct = (ckpt_s - plain_s) / plain_s * 100.0;
    let trials_per_s = total_trials as f64 / ckpt_s;
    println!(
        "{total_trials} trials × {INSTRUCTIONS} insts, shards of {SHARD_SIZE}/cell (best of {REPS}):"
    );
    println!("  in-memory    {:>8.3}s", plain_s);
    println!(
        "  checkpointed {:>8.3}s  ({overhead_pct:+.2}% — {trials_per_s:.0} trials/s)",
        ckpt_s
    );
    println!(
        "  resume       {:>8.3}s  (all shards verified + skipped)",
        resume_s
    );

    let prev = std::fs::read_to_string(path).ok();
    let mut history: Vec<String> = prev
        .as_deref()
        .and_then(extract_history)
        .map(|h| h.trim_start_matches('[').trim_end_matches(']'))
        .into_iter()
        .flat_map(split_history_entries)
        .collect();
    history.push(format!(
        "{{\"label\":{},\"checkpointed_s\":{},\"overhead_pct\":{}}}",
        esc(&label()),
        num(ckpt_s),
        num(overhead_pct),
    ));
    if history.len() > HISTORY_KEEP {
        history.drain(..history.len() - HISTORY_KEEP);
    }

    let json = format!(
        "{{\"bench\":\"campaign\",\"trials\":{total_trials},\"instructions\":{INSTRUCTIONS},\
         \"shard_size\":{SHARD_SIZE},\"in_memory_s\":{},\"checkpointed_s\":{},\"resume_s\":{},\
         \"trials_per_s\":{},\"checkpoint_overhead_pct\":{},\"history\":[{}]}}",
        num(plain_s),
        num(ckpt_s),
        num(resume_s),
        num(trials_per_s),
        num(overhead_pct),
        history.join(","),
    );
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_campaign.json");
    println!("-> {path}");

    assert!(
        overhead_pct < OVERHEAD_LIMIT_PCT,
        "checkpointing cost {overhead_pct:.2}% of campaign wall time — over the \
         {OVERHEAD_LIMIT_PCT}% durability budget (in-memory {plain_s:.3}s vs \
         checkpointed {ckpt_s:.3}s)"
    );
    assert!(
        resume_s < plain_s,
        "resuming a finished campaign ({resume_s:.3}s) must beat re-running it \
         ({plain_s:.3}s) — checkpoint verification is not earning its keep"
    );
}
