//! dL1-only vs L2-spill placement benchmark: time one cold simulation
//! of each app under `ICR-P-PS (S)` and under its `ICR-P-PS-L2 (S)`
//! spill descriptor, and record both — wall time plus the spill-region
//! counters — to `BENCH_spill.json` at the repository root.
//!
//! ```text
//! make bench-spill         # or: cargo bench -p icr-bench --bench spill
//! ```
//!
//! The spill tier buys replica coverage for blocks the dL1 has no dead
//! way for, at the cost of region bookkeeping on replication, writeback
//! and eviction. This bench makes both sides of that trade visible in
//! review: the recorded rows carry the region counters (the coverage
//! side) next to the per-app seconds (the cost side), and two
//! assertions keep the trade honest — the region must actually cycle
//! replicas through its lifecycle (created, then updated / promoted /
//! invalidated), and the bookkeeping must not blow up the simulation
//! (total spill wall time under 2x dL1-only). Fault-free serve counts
//! (`misses_served_by_spill`) are recorded but not asserted: on the
//! synthetic traces spilled blocks are almost always promoted into a
//! dL1 dead way or invalidated by a writeback before their primary is
//! re-missed, exactly like the dL1 replicas' own victim path.
//!
//! Not a criterion target: single cold passes measured with plain
//! [`Instant`], file format mirroring `BENCH_isa.json` (label from
//! `ICR_BENCH_LABEL` or the git short hash).

use icr_core::{DataL1Config, Scheme};
use icr_sim::json::{esc, num};
use icr_sim::{run_sim, SimConfig};
use std::time::Instant;

fn label() -> String {
    if let Ok(l) = std::env::var("ICR_BENCH_LABEL") {
        return l;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".into())
}

const SEED: u64 = 42;
const INSTRUCTIONS: u64 = 100_000;
const APPS: [&str; 3] = ["gzip", "vpr", "mcf"];

/// Runs `f` three times and returns (best wall-clock seconds, last
/// result): the minimum is the standard noise-resistant estimate for a
/// short single-pass measurement.
fn best_of_3<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("ran at least once"))
}

fn time_cell(scheme: Scheme, app: &str) -> (f64, icr_sim::SimResult) {
    let cfg = SimConfig::paper(app, DataL1Config::paper_default(scheme), INSTRUCTIONS, SEED);
    best_of_3(|| run_sim(&cfg))
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spill.json");

    let mut rows = Vec::new();
    let mut total_dl1 = 0.0f64;
    let mut total_spill = 0.0f64;
    let mut spills_created = 0u64;
    let mut lifecycle = 0u64;
    for app in APPS {
        let (dl1_s, _) = time_cell(Scheme::ICR_P_PS_S, app);
        let (spill_s, r) = time_cell(Scheme::ICR_P_PS_S_L2, app);
        println!(
            "{app:<8} dL1-only {:>8.3}ms  spill {:>8.3}ms  \
             (spills {}, served {}, invalidated {}, evicted {})",
            dl1_s * 1e3,
            spill_s * 1e3,
            r.icr.spills_created,
            r.icr.misses_served_by_spill,
            r.icr.spill_invalidations,
            r.icr.spill_evictions,
        );
        total_dl1 += dl1_s;
        total_spill += spill_s;
        spills_created += r.icr.spills_created;
        lifecycle += r.icr.spill_updates
            + r.icr.spill_invalidations
            + r.icr.spill_evictions
            + r.icr.misses_served_by_spill;
        rows.push(format!(
            "{{\"app\":{},\"dl1_only_s\":{},\"spill_s\":{},\"spills_created\":{},\
             \"spill_updates\":{},\"spill_invalidations\":{},\"spill_evictions\":{},\
             \"misses_served_by_spill\":{}}}",
            esc(app),
            num(dl1_s),
            num(spill_s),
            r.icr.spills_created,
            r.icr.spill_updates,
            r.icr.spill_invalidations,
            r.icr.spill_evictions,
            r.icr.misses_served_by_spill,
        ));
    }

    let json = format!(
        "{{\"bench\":\"spill\",\"label\":{},\"seed\":{SEED},\"instructions\":{INSTRUCTIONS},\
         \"total_dl1_only_s\":{},\"total_spill_s\":{},\"apps\":[{}]}}",
        esc(&label()),
        num(total_dl1),
        num(total_spill),
        rows.join(","),
    );
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_spill.json");
    println!(
        "total: dL1-only {:.3}ms, spill {:.3}ms ({:.2}x) -> {path}",
        total_dl1 * 1e3,
        total_spill * 1e3,
        total_spill / total_dl1.max(1e-12)
    );

    assert!(
        spills_created > 0 && lifecycle > 0,
        "the L2 replica region must see traffic (spilled {spills_created}, \
         lifecycle events {lifecycle}) — otherwise the placement tier is dead code"
    );
    assert!(
        total_spill < 2.0 * total_dl1,
        "spill-region bookkeeping ({total_spill:.4}s) must stay under 2x the \
         dL1-only run ({total_dl1:.4}s)"
    );
}
