//! Trials-to-target benchmark for importance-sampled fault injection:
//! run the same campaign matrix to the same Wilson 95% CI width twice —
//! uniform injection vs the exposure-tilted proposal — and record how
//! many trials each cell needed in `BENCH_importance.json` at the
//! repository root.
//!
//! ```text
//! make bench-importance    # or: cargo bench -p icr-bench --bench importance
//! ```
//!
//! The bench runs at a *physical* per-cycle fault probability
//! ([`P_PER_CYCLE`], of order one arrival per several runs) rather than
//! the campaign default that compresses every arrival into the first
//! cycles. In that regime the uniform leg spends most trials delivering
//! no fault at all, while the importance leg forces each trial's
//! arrival from the exact conditional-on-delivery distribution
//! (likelihood ratio 1) and tilts the strike toward strike-worthy
//! lines. The estimator must earn its complexity: the bench asserts the
//! importance leg reaches the target width in at least
//! [`SPEEDUP_GATE`]× fewer trials on at least half the cells. The
//! matrix is parity schemes only — an ECC cell's failure probability is
//! driven by double strikes the single-fault model never injects, its
//! weights are ≡ 1, and it would dilute the comparison without testing
//! anything.
//!
//! Not a criterion target, for the same reason as the campaign bench:
//! the execution engine memoizes completed cells process-wide, so each
//! repetition uses fresh master seeds and the per-cell trial counts are
//! summed across repetitions before the speedup is formed.

use icr_core::Scheme;
use icr_sim::json::{esc, num};
use icr_sim::{run_campaign, CampaignSpec};

const REPS: u64 = 3;
const TRIAL_CAP: u64 = 2_500;
const BATCH: u64 = 20;
const INSTRUCTIONS: u64 = 3_000;
/// Physical per-cycle arrival probability: the fault-free runs here
/// take ~12k cycles, so a trial delivers its fault with probability
/// `1 - (1-p)^C ≈ 0.26` — the regime forced injection is for.
const P_PER_CYCLE: f64 = 2.5e-5;
const TARGET_CI_WIDTH: f64 = 0.06;
const SPEEDUP_GATE: f64 = 3.0;
const HISTORY_KEEP: usize = 20;

/// One campaign per (leg, repetition): both legs of a repetition share
/// a master seed (same workloads, same estimand — the importance leg
/// changes only where and when each fault lands, and weighs the
/// difference), and repetitions use fresh seeds so the memoizing
/// engine executes every leg cold.
fn spec(master_seed: u64, importance: bool) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        vec![Scheme::ICR_P_PS_S, Scheme::ICR_P_PS_LS],
        vec!["gzip".into(), "gcc".into()],
        TRIAL_CAP,
        master_seed,
    );
    spec.instructions = INSTRUCTIONS;
    spec.batch = BATCH;
    spec.p_per_cycle = P_PER_CYCLE;
    spec.target_ci_width = Some(TARGET_CI_WIDTH);
    spec.importance = importance;
    spec
}

fn label() -> String {
    if let Ok(l) = std::env::var("ICR_BENCH_LABEL") {
        return l;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".into())
}

/// Extracts the `[...]` array following `"history":`, brackets included.
fn extract_history(doc: &str) -> Option<&str> {
    let at = doc.find("\"history\":[")? + "\"history\":".len();
    let rest = &doc[at..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits the comma-joined `{...}` entries of a flat history array.
fn split_history_entries(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in inner.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(inner[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_importance.json");

    // Per-cell trial totals across repetitions, cells in report order.
    let mut cell_names: Vec<String> = Vec::new();
    let mut uniform_trials: Vec<u64> = Vec::new();
    let mut importance_trials: Vec<u64> = Vec::new();

    for rep in 0..REPS {
        let seed = 1_000 + rep;
        let uni = run_campaign(&spec(seed, false)).expect("uniform leg");
        let imp = run_campaign(&spec(seed, true)).expect("importance leg");
        assert_eq!(uni.cells.len(), imp.cells.len());
        if rep == 0 {
            for c in &uni.cells {
                cell_names.push(format!("{} × {}", c.scheme.name(), c.app));
            }
            uniform_trials = vec![0; uni.cells.len()];
            importance_trials = vec![0; imp.cells.len()];
        }
        for (i, (u, w)) in uni.cells.iter().zip(&imp.cells).enumerate() {
            assert_eq!((u.scheme, &u.app), (w.scheme, &w.app));
            assert!(
                u.stopped_early && w.stopped_early,
                "{}: raise TRIAL_CAP — a leg hit the cap before the target width",
                cell_names[i]
            );
            uniform_trials[i] += u.trials;
            importance_trials[i] += w.trials;
        }
    }

    let mut cells_json = Vec::new();
    let mut winners = 0usize;
    println!(
        "trials to a {TARGET_CI_WIDTH} Wilson width ({INSTRUCTIONS} insts, \
         batch {BATCH}, summed over {REPS} seeds):"
    );
    for (i, name) in cell_names.iter().enumerate() {
        let speedup = uniform_trials[i] as f64 / importance_trials[i] as f64;
        if speedup >= SPEEDUP_GATE {
            winners += 1;
        }
        println!(
            "  {name:<24} uniform {:>6}  importance {:>6}  ({speedup:.2}x)",
            uniform_trials[i], importance_trials[i]
        );
        cells_json.push(format!(
            "{{\"cell\":{},\"uniform_trials\":{},\"importance_trials\":{},\"speedup\":{}}}",
            esc(name),
            uniform_trials[i],
            importance_trials[i],
            num(speedup),
        ));
    }
    let total_speedup: f64 =
        uniform_trials.iter().sum::<u64>() as f64 / importance_trials.iter().sum::<u64>() as f64;
    println!(
        "  overall: {total_speedup:.2}x fewer trials, {winners}/{} cells ≥ {SPEEDUP_GATE}x",
        cell_names.len()
    );

    let prev = std::fs::read_to_string(path).ok();
    let mut history: Vec<String> = prev
        .as_deref()
        .and_then(extract_history)
        .map(|h| h.trim_start_matches('[').trim_end_matches(']'))
        .into_iter()
        .flat_map(split_history_entries)
        .collect();
    history.push(format!(
        "{{\"label\":{},\"overall_speedup\":{},\"cells_at_gate\":{winners}}}",
        esc(&label()),
        num(total_speedup),
    ));
    if history.len() > HISTORY_KEEP {
        history.drain(..history.len() - HISTORY_KEEP);
    }

    let json = format!(
        "{{\"bench\":\"importance\",\"target_ci_width\":{},\"instructions\":{INSTRUCTIONS},\
         \"batch\":{BATCH},\"reps\":{REPS},\"speedup_gate\":{},\"overall_speedup\":{},\
         \"cells\":[{}],\"history\":[{}]}}",
        num(TARGET_CI_WIDTH),
        num(SPEEDUP_GATE),
        num(total_speedup),
        cells_json.join(","),
        history.join(","),
    );
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_importance.json");
    println!("-> {path}");

    assert!(
        winners * 2 >= cell_names.len(),
        "importance sampling reached the target width {SPEEDUP_GATE}x faster on only \
         {winners} of {} cells — the proposal is not earning its weights",
        cell_names.len()
    );
}
