//! Interpret-vs-replay benchmark for the execution-driven ISA kernels:
//! time one cold interpretation of each kernel against one replay of its
//! saved `.icrt` trace, and record both to `BENCH_isa.json` at the
//! repository root.
//!
//! ```text
//! make bench-isa           # or: cargo bench -p icr-bench --bench isa
//! ```
//!
//! Replay is the whole point of the on-disk trace cache: the second and
//! later simulations of a kernel should pay a decode-and-validate pass,
//! not a full RV32IM interpretation. The bench asserts that the total
//! replay time beats the total interpret time, so the cache earning its
//! keep is checked every time this target runs — alongside the recorded
//! numbers, which make the margin visible in review.
//!
//! Not a criterion target: the interesting quantities are single cold
//! passes over each kernel, measured with plain [`Instant`], and the
//! file format mirrors `BENCH_all.json` (label + history carried
//! forward, `ICR_BENCH_LABEL` honoured).

use icr_sim::json::{esc, num};
use icr_trace::disk;
use std::time::Instant;

fn label() -> String {
    if let Ok(l) = std::env::var("ICR_BENCH_LABEL") {
        return l;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".into())
}

const SEED: u64 = 42;

/// Runs `f` three times and returns (best wall-clock seconds, last
/// result): the minimum is the standard noise-resistant estimate for a
/// short single-pass measurement.
fn best_of_3<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("ran at least once"))
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_isa.json");
    let dir = std::env::temp_dir().join("icr-bench-isa");
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let mut rows = Vec::new();
    let mut total_interp = 0.0f64;
    let mut total_replay = 0.0f64;
    for name in icr_isa::kernels::kernel_names() {
        let (interp_s, (trace, retired, _)) = best_of_3(|| icr_isa::run_kernel(name, SEED));

        let file = dir.join(format!(
            "{}.icrt",
            name.strip_prefix("isa:").unwrap_or(name)
        ));
        disk::write_trace(&file, name, SEED, &trace).expect("trace writes");

        let (replay_s, stored) = best_of_3(|| disk::read_trace(&file).expect("trace replays"));
        assert_eq!(stored.insts, trace, "{name}: replay must be exact");

        let bytes = std::fs::metadata(&file).expect("trace file").len();
        println!(
            "{name:<14} {retired:>7} insts  interpret {:>8.3}ms  replay {:>8.3}ms  ({bytes} bytes, {:.2} B/inst)",
            interp_s * 1e3,
            replay_s * 1e3,
            bytes as f64 / retired.max(1) as f64
        );
        total_interp += interp_s;
        total_replay += replay_s;
        rows.push(format!(
            "{{\"app\":{},\"retired\":{retired},\"interpret_s\":{},\"replay_s\":{},\"trace_bytes\":{bytes}}}",
            esc(name),
            num(interp_s),
            num(replay_s),
        ));
    }

    let json = format!(
        "{{\"bench\":\"isa\",\"label\":{},\"seed\":{SEED},\"total_interpret_s\":{},\"total_replay_s\":{},\"kernels\":[{}]}}",
        esc(&label()),
        num(total_interp),
        num(total_replay),
        rows.join(","),
    );
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_isa.json");
    println!(
        "total: interpret {:.3}ms, replay {:.3}ms ({:.1}x) -> {path}",
        total_interp * 1e3,
        total_replay * 1e3,
        total_interp / total_replay.max(1e-12)
    );

    assert!(
        total_replay < total_interp,
        "replaying stored traces ({total_replay:.4}s) must beat re-interpreting \
         ({total_interp:.4}s) — the disk cache is not earning its keep"
    );
}
