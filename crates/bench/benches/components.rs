//! Microbenchmarks of the building blocks: the coding substrate, the
//! cache structures, the workload generator and the full pipeline. These
//! bound how fast the figure regeneration can go and catch performance
//! regressions in the hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use icr_core::{DataL1, DataL1Config, Scheme};
use icr_ecc::{ByteParity, ProtectedWord, Protection, SecDed};
use icr_mem::{
    AccessKind, Addr, BlockAddr, Cache, CacheGeometry, DataBlock, HierarchyConfig, MemoryBackend,
};
use icr_sim::{run_sim, SimConfig};
use icr_trace::{apps, TraceGenerator};

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("secded_encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(SecDed::encode(black_box(x)))
        })
    });
    g.bench_function("secded_decode_clean", |b| {
        let code = SecDed::encode(0xDEAD_BEEF_F00D_CAFE);
        b.iter(|| black_box(code.decode(black_box(0xDEAD_BEEF_F00D_CAFE))))
    });
    g.bench_function("secded_decode_corrupted", |b| {
        let code = SecDed::encode(0xDEAD_BEEF_F00D_CAFE);
        b.iter(|| black_box(code.decode(black_box(0xDEAD_BEEF_F00D_CAFE ^ (1 << 42)))))
    });
    g.bench_function("parity_encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(ByteParity::encode(black_box(x)))
        })
    });
    g.bench_function("protected_word_check", |b| {
        let mut w = ProtectedWord::encode(12345, Protection::SecDed);
        b.iter(|| black_box(w.check_and_correct()))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("l2_lookup_hit", |b| {
        let geom = CacheGeometry::new(256 * 1024, 4, 64);
        let mut cache = Cache::new(geom, 6);
        let addr = BlockAddr(0x1000);
        cache.fill(addr, DataBlock::pristine(addr, 8), false);
        b.iter(|| black_box(cache.lookup(black_box(addr), AccessKind::Read)))
    });
    g.bench_function("dl1_load_hit_basep", |b| {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
        dl1.load(Addr(0x1000_0000), 0, &mut backend);
        let mut now = 1;
        b.iter(|| {
            now += 2;
            black_box(dl1.load(black_box(Addr(0x1000_0000)), now, &mut backend))
        })
    });
    g.bench_function("dl1_store_with_replication", |b| {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::aggressive(Scheme::ICR_P_PS_S));
        let mut now = 0;
        b.iter(|| {
            now += 2;
            let addr = Addr(0x1000_0000 + (now % 4096) * 64);
            black_box(dl1.store(black_box(addr), now, &mut backend))
        })
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(10_000));
    for app in ["gzip", "mcf"] {
        g.bench_function(format!("generate_10k_{app}"), |b| {
            b.iter(|| {
                let gen = TraceGenerator::new(apps::profile(app), 1);
                black_box(gen.take(10_000).count())
            })
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(20_000));
    for scheme in [Scheme::BASE_P, Scheme::ICR_P_PS_S] {
        g.bench_function(format!("sim_20k_insts_{}", scheme.name()), |b| {
            b.iter(|| {
                let cfg = SimConfig::paper("gzip", DataL1Config::paper_default(scheme), 20_000, 42);
                black_box(run_sim(&cfg).pipeline.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ecc, bench_cache, bench_trace, bench_pipeline);
criterion_main!(benches);
