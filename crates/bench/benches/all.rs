//! Full-matrix benchmark: regenerate every figure cold (empty run cache
//! and workload store) through the figure-granularity pipeline, and
//! record per-figure plus total wall-clock to `BENCH_all.json` at the
//! repository root.
//!
//! ```text
//! make bench-all           # or: cargo bench -p icr-bench --bench all
//! ```
//!
//! The file is tracked: each PR refreshes it, and the `history` array
//! carries the last few totals forward so the cold-time trajectory is
//! readable without walking git history. Environment knobs:
//!
//! * `ICR_BENCH_LABEL` — label for the new history entry (default: the
//!   short git revision, else `local`).
//! * `ICR_BENCH_GATE` — when set, exit non-zero if the new total cold
//!   time regresses more than `ICR_BENCH_GATE_PCT` percent (default 20)
//!   over the committed baseline. This is the CI regression gate.
//!
//! Not a criterion target for the same reason as the engine bench: the
//! interesting quantity is one *cold* pass, which repeated iterations
//! would erase. Per-figure times are measured inside the pipelined
//! scheduler, so a figure whose cells were memoized by an earlier
//! figure is credited with its warm (near-zero) cost — exactly what the
//! end-to-end `icr-exp all` run pays.

use icr_sim::exec::Pool;
use icr_sim::experiment::{figure_runners, ExpOptions};
use icr_sim::json::{esc, num};
use std::time::Instant;

/// Extracts the number following `"key":` in a one-line JSON document.
/// A scan, not a parser — the file is machine-written by this bench.
fn extract_num(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `[...]` array following `"history":`, brackets included.
fn extract_history(doc: &str) -> Option<&str> {
    let at = doc.find("\"history\":[")? + "\"history\":".len();
    let rest = &doc[at..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

fn label() -> String {
    if let Ok(l) = std::env::var("ICR_BENCH_LABEL") {
        return l;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".into())
}

const HISTORY_KEEP: usize = 20;

fn main() {
    let opts = ExpOptions {
        instructions: 200_000,
        seed: 42,
        threads: 0,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_all.json");
    let prev = std::fs::read_to_string(path).ok();
    let prev_total = prev.as_deref().and_then(|d| extract_num(d, "total_cold_s"));

    let runners = figure_runners();
    let ids: Vec<&'static str> = runners.iter().map(|(id, _)| *id).collect();
    let mut elapsed = vec![0.0f64; runners.len()];

    let t = Instant::now();
    let results = Pool::new(opts.threads).run_observed(
        runners,
        |(_, f)| f(&opts),
        |p| elapsed[p.index] = p.elapsed.as_secs_f64(),
    );
    let total_s = t.elapsed().as_secs_f64();
    assert_eq!(results.len(), ids.len());

    let figures: Vec<String> = ids
        .iter()
        .zip(&elapsed)
        .map(|(id, s)| format!("{{\"id\":{},\"cold_s\":{}}}", esc(id), num(*s)))
        .collect();

    // Carry the previous history forward, appending this run.
    let mut history: Vec<String> = prev
        .as_deref()
        .and_then(extract_history)
        .map(|h| h.trim_start_matches('[').trim_end_matches(']'))
        .into_iter()
        .flat_map(split_history_entries)
        .collect();
    history.push(format!(
        "{{\"label\":{},\"total_cold_s\":{}}}",
        esc(&label()),
        num(total_s)
    ));
    if history.len() > HISTORY_KEEP {
        history.drain(..history.len() - HISTORY_KEEP);
    }

    let json = format!(
        "{{\"bench\":\"all\",\"instructions\":{},\"threads\":{},\"total_cold_s\":{},\"figures\":[{}],\"history\":[{}]}}",
        opts.instructions,
        Pool::new(opts.threads).threads(),
        num(total_s),
        figures.join(","),
        history.join(","),
    );
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_all.json");

    let mut slowest: Vec<(&str, f64)> = ids.iter().copied().zip(elapsed.iter().copied()).collect();
    slowest.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top: Vec<String> = slowest
        .iter()
        .take(3)
        .map(|(id, s)| format!("{id} {s:.2}s"))
        .collect();
    println!(
        "all figures cold in {total_s:.2}s (slowest: {}) -> {path}",
        top.join(", ")
    );

    if std::env::var_os("ICR_BENCH_GATE").is_some() {
        let pct: f64 = std::env::var("ICR_BENCH_GATE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20.0);
        match prev_total {
            Some(base) if total_s > base * (1.0 + pct / 100.0) => {
                eprintln!(
                    "cold-time regression gate: {total_s:.2}s is more than {pct}% over \
                     the committed baseline {base:.2}s"
                );
                std::process::exit(1);
            }
            Some(base) => println!("gate ok: {total_s:.2}s vs baseline {base:.2}s (limit +{pct}%)"),
            None => println!("gate skipped: no committed baseline to compare against"),
        }
    }
}

/// Splits the comma-joined `{...}` entries of a flat history array.
/// Entries contain no nested braces, so a brace-depth scan suffices.
fn split_history_entries(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in inner.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(inner[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}
