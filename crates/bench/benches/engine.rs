//! Engine smoke benchmark: regenerate Figure 9 cold (empty caches) and
//! warm (same process, run cache and workload store populated), and
//! record the wall-clock plus cache statistics to `BENCH_engine.json` at
//! the repository root.
//!
//! ```text
//! make bench-engine        # or: cargo bench -p icr-bench --bench engine
//! ```
//!
//! Not a criterion target: the interesting quantity is the cold/warm
//! asymmetry of a single pass, which repeated criterion iterations would
//! erase (every iteration after the first is warm by construction).

use icr_sim::engine::Engine;
use icr_sim::exec::Pool;
use icr_sim::experiment::{fig9, ExpOptions};
use icr_sim::json::num;
use std::time::Instant;

fn main() {
    let opts = ExpOptions {
        instructions: 50_000,
        seed: 42,
        threads: 0,
    };

    let t = Instant::now();
    let cold = fig9(&opts);
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let warm = fig9(&opts);
    let warm_s = t.elapsed().as_secs_f64();
    let stats = Engine::global().stats();

    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "warm regeneration must be byte-identical"
    );
    let trace_lookups = stats.trace_hits + stats.trace_misses;
    let trace_hit_rate = stats.trace_hits as f64 / trace_lookups.max(1) as f64;

    let json = format!(
        concat!(
            "{{\"bench\":\"engine\",\"figure\":\"fig9\",",
            "\"instructions\":{},\"threads\":{},",
            "\"cold_s\":{},\"warm_s\":{},\"speedup\":{},",
            "\"run_hits\":{},\"run_misses\":{},",
            "\"trace_hits\":{},\"trace_misses\":{},\"trace_hit_rate\":{}}}"
        ),
        opts.instructions,
        Pool::new(opts.threads).threads(),
        num(cold_s),
        num(warm_s),
        num(cold_s / warm_s.max(1e-9)),
        stats.run_hits,
        stats.run_misses,
        stats.trace_hits,
        stats.trace_misses,
        num(trace_hit_rate),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_engine.json");
    println!(
        "fig9 cold {cold_s:.3}s, warm {warm_s:.3}s ({:.0}x); trace store hit rate {:.1}% -> {path}",
        cold_s / warm_s.max(1e-9),
        100.0 * trace_hit_rate
    );
}
