//! One Criterion bench target per table/figure of the paper: each
//! iteration regenerates the figure's data end-to-end (workload
//! generation → pipeline → dL1 schemes → metrics). Instruction budgets
//! are kept small here so `cargo bench` terminates quickly; use the
//! `icr-exp` binary for full-budget regeneration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icr_sim::experiment::{self, ExpOptions};

fn opts() -> ExpOptions {
    ExpOptions {
        instructions: 5_000,
        seed: 42,
        threads: 0,
    }
}

macro_rules! fig_bench {
    ($group:expr, $name:literal, $runner:path) => {
        $group.bench_function($name, |b| {
            b.iter(|| {
                let r = $runner(&opts());
                r.validate().expect("consistent figure");
                black_box(r)
            })
        });
    };
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(experiment::table1())));
    fig_bench!(g, "fig1_replication_ability_attempts", experiment::fig1);
    fig_bench!(g, "fig2_loads_with_replica_attempts", experiment::fig2);
    fig_bench!(g, "fig3_one_vs_two_replicas", experiment::fig3);
    fig_bench!(g, "fig4_miss_rate_two_replicas", experiment::fig4);
    fig_bench!(g, "fig5_vertical_vs_horizontal", experiment::fig5);
    fig_bench!(g, "fig6_ability_ls_vs_s", experiment::fig6);
    fig_bench!(g, "fig7_loads_with_replica_ls_vs_s", experiment::fig7);
    fig_bench!(g, "fig8_miss_rates", experiment::fig8);
    fig_bench!(g, "fig9_all_schemes_cycles", experiment::fig9);
    fig_bench!(g, "fig10_decay_window_metrics", experiment::fig10);
    fig_bench!(g, "fig11_decay_window_cycles", experiment::fig11);
    fig_bench!(g, "fig12_relaxed_cycles", experiment::fig12);
    fig_bench!(g, "fig13_window_1000_vs_0", experiment::fig13);
    fig_bench!(g, "fig14_error_injection", experiment::fig14);
    fig_bench!(g, "fig15_keep_replicas", experiment::fig15);
    fig_bench!(g, "fig16_write_through", experiment::fig16);
    fig_bench!(g, "fig17_speculative_ecc", experiment::fig17);
    fig_bench!(g, "sens_cache_shapes", experiment::sensitivity);
    fig_bench!(g, "ablation_victim_policy", experiment::victim_ablation);
    fig_bench!(g, "extension_error_models", experiment::error_models);
    fig_bench!(g, "extension_software_hints", experiment::hints_ablation);
    fig_bench!(g, "extension_dupcache_comparison", experiment::dupcache);
    fig_bench!(g, "extension_scrubbing", experiment::scrub);
    fig_bench!(g, "extension_ruu_window", experiment::window);
    fig_bench!(g, "extension_dram_open_page", experiment::dram);
    fig_bench!(g, "extension_avf_exposure", experiment::exposure);
    fig_bench!(g, "extension_silent_corruption", experiment::sdc);
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
