//! Criterion benchmark harness for the ICR reproduction (see benches/).
