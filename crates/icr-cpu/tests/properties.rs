//! Property-based tests for the out-of-order core: for *any* well-formed
//! instruction stream, the pipeline must commit everything exactly once,
//! respect its structural limits, and never wedge.

use icr_cpu::{Bimodal, Btb, Combined, TwoLevel};
use icr_cpu::{CpuConfig, DirPredictor, FixedLatencyMemory, PerfectMemory, Pipeline};
use icr_trace::{Inst, OpClass, Reg};
use proptest::prelude::*;

/// An arbitrary small, well-formed instruction stream.
fn arb_trace() -> impl Strategy<Value = Vec<Inst>> {
    let op = prop::sample::select(vec![
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ]);
    prop::collection::vec((op, 0u8..64, 0u8..64, 0u64..256, any::<bool>()), 1..200).prop_map(
        |raw| {
            let mut pc = 0x1000u64;
            raw.into_iter()
                .map(|(op, d, s, blk, taken)| {
                    let inst = match op {
                        OpClass::Load => Inst::load(pc, 0x8000 + blk * 8, Reg(d), Some(Reg(s))),
                        OpClass::Store => Inst::store(pc, 0x8000 + blk * 8, Reg(s), None),
                        OpClass::Branch => {
                            Inst::branch(pc, 0x1000 + (blk % 64) * 4, taken, Some(Reg(s)))
                        }
                        other => Inst::alu(pc, other, Reg(d), [Some(Reg(s)), None]),
                    };
                    pc = if op == OpClass::Branch && taken {
                        inst.target
                    } else {
                        pc + 4
                    };
                    inst
                })
                .collect()
        },
    )
}

proptest! {
    /// Every instruction commits exactly once, whatever the stream shape.
    #[test]
    fn pipeline_commits_every_instruction(trace in arb_trace()) {
        let n = trace.len() as u64;
        let loads = trace.iter().filter(|i| i.op == OpClass::Load).count() as u64;
        let stores = trace.iter().filter(|i| i.op == OpClass::Store).count() as u64;
        let branches = trace.iter().filter(|i| i.op == OpClass::Branch).count() as u64;
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(trace, &mut PerfectMemory, &mut PerfectMemory);
        prop_assert_eq!(stats.committed, n);
        prop_assert_eq!(stats.loads, loads);
        prop_assert_eq!(stats.stores, stores);
        prop_assert_eq!(stats.branches, branches);
        prop_assert!(stats.mispredicts <= stats.branches);
        // Cannot beat the machine width.
        prop_assert!(stats.committed <= stats.cycles * 4);
    }

    /// Slower memory cannot make the machine meaningfully *faster*, and
    /// the run still terminates.
    ///
    /// Strict monotonicity does not hold for greedy schedulers (Graham's
    /// scheduling anomalies: delaying one op can reorder the oldest-first
    /// issue scan into a globally better schedule), so a small tolerance
    /// is allowed; systematic speedups would still fail this bound.
    #[test]
    fn slower_memory_is_near_monotone(trace in arb_trace(), extra in 1u64..50) {
        let mut cpu = Pipeline::new(CpuConfig::default());
        let fast = cpu.run(trace.clone(), &mut PerfectMemory, &mut PerfectMemory);
        let mut slow_mem = FixedLatencyMemory { load_latency: 1 + extra, store_latency: 1 };
        let mut cpu = Pipeline::new(CpuConfig::default());
        let slow = cpu.run(trace, &mut PerfectMemory, &mut slow_mem);
        prop_assert!(
            slow.cycles as f64 >= 0.95 * fast.cycles as f64 - 10.0,
            "slower memory produced a >5% speedup: {} vs {}",
            slow.cycles,
            fast.cycles
        );
        prop_assert_eq!(slow.committed, fast.committed);
    }

    /// Direction predictors accept any PC without panicking and learn a
    /// constant direction within a handful of updates.
    #[test]
    fn predictors_learn_constant_streams(pc: u64, taken: bool) {
        let mut bi = Bimodal::new(1024);
        let mut two = TwoLevel::new(512, 1024, 8);
        let mut comb = Combined::from_config(&CpuConfig::default());
        for _ in 0..32 {
            bi.update(pc, taken);
            two.update(pc, taken);
            comb.update(pc, taken);
        }
        prop_assert_eq!(bi.predict(pc), taken);
        prop_assert_eq!(two.predict(pc), taken);
        prop_assert_eq!(comb.predict(pc), taken);
    }

    /// The BTB returns exactly what was last installed for a PC.
    #[test]
    fn btb_read_your_writes(installs in prop::collection::vec((0u64..4096, any::<u64>()), 1..64)) {
        let mut btb = Btb::new(512, 4);
        let mut last = std::collections::HashMap::new();
        for (pc, target) in installs {
            btb.update(pc, target);
            last.insert(pc, target);
        }
        for (pc, target) in last {
            // The entry may have been evicted, but if present it must be
            // the most recent target.
            if let Some(t) = btb.lookup(pc) {
                prop_assert_eq!(t, target);
            }
        }
    }
}
