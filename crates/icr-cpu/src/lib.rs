//! Cycle-level out-of-order superscalar timing model for the ICR
//! reproduction — a from-scratch stand-in for SimpleScalar 3.0's
//! `sim-outorder` (the paper's simulation vehicle).
//!
//! The machine implements Table 1 of the paper: 4-wide fetch/issue/commit,
//! a 16-entry register update unit, an 8-entry load/store queue, the
//! 4+1/4+1 functional-unit pool, a combined (bimodal + two-level) branch
//! predictor with a 512-entry 4-way BTB and a 3-cycle misprediction
//! penalty. The memory system is abstracted behind the [`DataMemory`] and
//! [`InstrMemory`] traits so that every dL1 scheme under study (BaseP,
//! BaseECC, all ICR variants) plugs in unchanged.
//!
//! ```
//! use icr_cpu::{Pipeline, CpuConfig, PerfectMemory, FixedLatencyMemory};
//! use icr_trace::{apps, TraceGenerator};
//!
//! // The BaseECC effect in miniature: 2-cycle loads cost real time even
//! // though the out-of-order core hides part of the latency.
//! let trace = || TraceGenerator::new(apps::profile("gzip"), 7).take(20_000);
//! let mut cpu = Pipeline::new(CpuConfig::default());
//! let fast = cpu.run(trace(), &mut PerfectMemory, &mut PerfectMemory);
//! let mut cpu = Pipeline::new(CpuConfig::default());
//! let mut slow_mem = FixedLatencyMemory { load_latency: 2, store_latency: 1 };
//! let slow = cpu.run(trace(), &mut PerfectMemory, &mut slow_mem);
//! assert!(slow.cycles > fast.cycles);
//! ```

pub mod bpred;
pub mod config;
pub mod fu;
pub mod mem;
pub mod pipeline;

pub use bpred::{Bimodal, Btb, Combined, DirPredictor, TwoLevel};
pub use config::CpuConfig;
pub use fu::{op_latency, FuPool};
pub use mem::{DataMemory, FixedLatencyMemory, InstrMemory, PerfectMemory};
pub use pipeline::{Pipeline, PipelineStats};
