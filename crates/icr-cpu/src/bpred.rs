//! Branch prediction: bimodal, two-level, the combined predictor of
//! Table 1, and a set-associative BTB.

use crate::config::CpuConfig;

/// Two-bit saturating counter helpers.
fn counter_up(c: u8) -> u8 {
    (c + 1).min(3)
}
fn counter_down(c: u8) -> u8 {
    c.saturating_sub(1)
}
fn counter_taken(c: u8) -> bool {
    c >= 2
}

/// A direction predictor.
pub trait DirPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;
    /// Trains with the resolved outcome.
    fn update(&mut self, pc: u64, taken: bool);
}

/// Bimodal predictor: a table of 2-bit counters indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
}

impl Bimodal {
    /// A predictor with `entries` counters (power of two), initialised
    /// weakly taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            table: vec![2; entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }
}

impl DirPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.table[self.index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = if taken {
            counter_up(self.table[i])
        } else {
            counter_down(self.table[i])
        };
    }
}

/// Two-level adaptive predictor: per-branch history registers indexing a
/// shared pattern table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    histories: Vec<u16>,
    pattern: Vec<u8>,
    history_bits: u32,
}

impl TwoLevel {
    /// A predictor with `history_entries` branch-history registers of
    /// `history_bits` bits and `pattern_entries` pattern counters.
    ///
    /// # Panics
    ///
    /// Panics unless both table sizes are powers of two and
    /// `history_bits <= 16`.
    pub fn new(history_entries: usize, pattern_entries: usize, history_bits: u32) -> Self {
        assert!(history_entries.is_power_of_two());
        assert!(pattern_entries.is_power_of_two());
        assert!(history_bits <= 16, "history register is 16 bits wide");
        TwoLevel {
            histories: vec![0; history_entries],
            pattern: vec![2; pattern_entries],
            history_bits,
        }
    }

    fn hist_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn pattern_index(&self, pc: u64) -> usize {
        let h = self.histories[self.hist_index(pc)] as usize;
        // XOR-fold the PC in so different branches sharing a history value
        // do not fully alias (gshare-style hashing).
        (h ^ ((pc >> 2) as usize)) & (self.pattern.len() - 1)
    }
}

impl DirPredictor for TwoLevel {
    fn predict(&self, pc: u64) -> bool {
        counter_taken(self.pattern[self.pattern_index(pc)])
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pi = self.pattern_index(pc);
        self.pattern[pi] = if taken {
            counter_up(self.pattern[pi])
        } else {
            counter_down(self.pattern[pi])
        };
        let hi = self.hist_index(pc);
        let mask = (1u16 << self.history_bits) - 1;
        self.histories[hi] = ((self.histories[hi] << 1) | taken as u16) & mask;
    }
}

/// The paper's combined predictor: bimodal + two-level with a 2-bit
/// chooser per entry selecting which component to trust.
#[derive(Debug, Clone)]
pub struct Combined {
    bimodal: Bimodal,
    two_level: TwoLevel,
    chooser: Vec<u8>,
}

impl Combined {
    /// Builds the combined predictor from a [`CpuConfig`].
    pub fn from_config(config: &CpuConfig) -> Self {
        Combined {
            bimodal: Bimodal::new(config.bimodal_entries),
            two_level: TwoLevel::new(
                config.two_level_entries,
                config.two_level_entries,
                config.history_bits,
            ),
            chooser: vec![2; config.chooser_entries],
        }
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }
}

impl DirPredictor for Combined {
    fn predict(&self, pc: u64) -> bool {
        // Chooser >= 2 selects the two-level component.
        if counter_taken(self.chooser[self.chooser_index(pc)]) {
            self.two_level.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let p_two = self.two_level.predict(pc);
        let p_bi = self.bimodal.predict(pc);
        // Train the chooser toward whichever component was right.
        if p_two != p_bi {
            let ci = self.chooser_index(pc);
            self.chooser[ci] = if p_two == taken {
                counter_up(self.chooser[ci])
            } else {
                counter_down(self.chooser[ci])
            };
        }
        self.two_level.update(pc, taken);
        self.bimodal.update(pc, taken);
    }
}

/// Branch target buffer: set-associative PC → target map with LRU.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>, // each inner vec is MRU-first
    ways: usize,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: u64,
    target: u64,
}

impl Btb {
    /// A BTB with `entries` total entries across `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` divides `entries` and the set count is a power
    /// of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        Btb {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets.len() - 1)
    }

    /// The predicted target for the branch at `pc`, if the BTB knows one.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        self.sets[self.set_index(pc)]
            .iter()
            .find(|e| e.pc == pc)
            .map(|e| e.target)
    }

    /// Installs/refreshes the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        let si = self.set_index(pc);
        let ways = self.ways;
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|e| e.pc == pc) {
            set.remove(pos);
        } else if set.len() == ways {
            set.pop(); // evict LRU
        }
        set.insert(0, BtbEntry { pc, target });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
    }

    #[test]
    fn two_level_learns_an_alternating_pattern() {
        let mut p = TwoLevel::new(64, 256, 8);
        // Warm up on strict alternation.
        let mut taken = false;
        for _ in 0..200 {
            p.update(0x200, taken);
            taken = !taken;
        }
        // Now it should predict the alternation correctly.
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(0x200) == taken {
                correct += 1;
            }
            p.update(0x200, taken);
            taken = !taken;
        }
        assert!(correct > 95, "two-level got {correct}/100 on alternation");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(64);
        let mut taken = false;
        let mut correct = 0;
        for _ in 0..200 {
            if p.predict(0x200) == taken {
                correct += 1;
            }
            p.update(0x200, taken);
            taken = !taken;
        }
        assert!(correct < 150, "bimodal should struggle on alternation");
    }

    #[test]
    fn combined_tracks_the_better_component() {
        let mut p = Combined::from_config(&CpuConfig::default());
        let mut taken = false;
        for _ in 0..300 {
            p.update(0x300, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(0x300) == taken {
                correct += 1;
            }
            p.update(0x300, taken);
            taken = !taken;
        }
        assert!(correct > 90, "combined got {correct}/100 on alternation");
    }

    #[test]
    fn btb_remembers_targets() {
        let mut b = Btb::new(512, 4);
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x4000);
        assert_eq!(b.lookup(0x100), Some(0x4000));
        b.update(0x100, 0x8000);
        assert_eq!(b.lookup(0x100), Some(0x8000));
    }

    #[test]
    fn btb_evicts_lru_within_a_set() {
        let mut b = Btb::new(8, 2); // 4 sets, 2 ways
                                    // Three branches mapping to the same set (stride = 4 sets * 4B).
        let (a, c, d) = (0x10, 0x10 + 16, 0x10 + 32);
        b.update(a, 1);
        b.update(c, 2);
        b.update(d, 3); // evicts a
        assert_eq!(b.lookup(a), None);
        assert_eq!(b.lookup(c), Some(2));
        assert_eq!(b.lookup(d), Some(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bimodal_size_must_be_power_of_two() {
        Bimodal::new(100);
    }
}
