//! The pipeline's view of the memory system.
//!
//! The core is deliberately decoupled from any particular cache model: the
//! ICR schemes, the baselines and the test doubles all implement these two
//! traits. Latency is the only thing the pipeline needs back — the
//! functional side (data, protection, replication) stays inside the
//! implementation.

/// Data-side memory interface (the dL1 and everything below it).
pub trait DataMemory {
    /// Performs a load of the word at `addr` at absolute cycle `now`;
    /// returns the total load-to-use latency in cycles (≥ 1).
    fn load(&mut self, addr: u64, now: u64) -> u64;

    /// Performs a store to the word at `addr` at absolute cycle `now`;
    /// returns the cycles the store occupies commit (1 in the common,
    /// buffered case; more when a write-through buffer is full).
    fn store(&mut self, addr: u64, now: u64) -> u64;
}

/// Instruction-side memory interface (the iL1 and everything below it).
pub trait InstrMemory {
    /// Fetches the instruction at `pc` at absolute cycle `now`; returns the
    /// fetch latency in cycles (≥ 1).
    fn fetch(&mut self, pc: u64, now: u64) -> u64;
}

/// An ideal memory: every access takes one cycle. Useful for isolating the
/// core in tests and for upper-bound comparisons.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectMemory;

impl DataMemory for PerfectMemory {
    fn load(&mut self, _addr: u64, _now: u64) -> u64 {
        1
    }
    fn store(&mut self, _addr: u64, _now: u64) -> u64 {
        1
    }
}

impl InstrMemory for PerfectMemory {
    fn fetch(&mut self, _pc: u64, _now: u64) -> u64 {
        1
    }
}

/// A fixed-latency data memory for tests: every load costs `load_latency`,
/// every store costs `store_latency`.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatencyMemory {
    /// Latency charged to every load.
    pub load_latency: u64,
    /// Latency charged to every store.
    pub store_latency: u64,
}

impl DataMemory for FixedLatencyMemory {
    fn load(&mut self, _addr: u64, _now: u64) -> u64 {
        self.load_latency
    }
    fn store(&mut self, _addr: u64, _now: u64) -> u64 {
        self.store_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_memory_is_single_cycle() {
        let mut m = PerfectMemory;
        assert_eq!(m.load(0x1000, 5), 1);
        assert_eq!(m.store(0x1000, 5), 1);
        assert_eq!(m.fetch(0x400, 5), 1);
    }

    #[test]
    fn fixed_latency_memory_returns_configured_costs() {
        let mut m = FixedLatencyMemory {
            load_latency: 2,
            store_latency: 1,
        };
        assert_eq!(m.load(0, 0), 2);
        assert_eq!(m.store(0, 0), 1);
    }
}
