//! Functional-unit pool: per-class issue bandwidth and latencies.

use crate::config::CpuConfig;
use icr_trace::OpClass;

/// Execution latency of each op class, in cycles (SimpleScalar defaults
/// for pipelined units; loads/stores are handled by the memory system).
pub fn op_latency(op: OpClass) -> u64 {
    match op {
        OpClass::IntAlu | OpClass::Branch => 1,
        OpClass::IntMul => 3,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 4,
        // Memory latency comes from the cache model, not here.
        OpClass::Load | OpClass::Store => 1,
    }
}

/// Tracks how many units of each class have been claimed this cycle.
/// All units are pipelined (occupancy 1), so availability resets per cycle.
#[derive(Debug, Clone)]
pub struct FuPool {
    int_alu: usize,
    int_mul: usize,
    fp_alu: usize,
    fp_mul: usize,
    used_int_alu: usize,
    used_int_mul: usize,
    used_fp_alu: usize,
    used_fp_mul: usize,
}

impl FuPool {
    /// Builds the pool from a config.
    pub fn from_config(config: &CpuConfig) -> Self {
        FuPool {
            int_alu: config.int_alu_units,
            int_mul: config.int_mul_units,
            fp_alu: config.fp_alu_units,
            fp_mul: config.fp_mul_units,
            used_int_alu: 0,
            used_int_mul: 0,
            used_fp_alu: 0,
            used_fp_mul: 0,
        }
    }

    /// Starts a new cycle: all pipelined units accept one new op again.
    pub fn new_cycle(&mut self) {
        self.used_int_alu = 0;
        self.used_int_mul = 0;
        self.used_fp_alu = 0;
        self.used_fp_mul = 0;
    }

    /// Tries to claim a unit for `op` this cycle.
    ///
    /// Branches and memory ops execute on the integer ALUs (address
    /// generation / condition evaluation), as in SimpleScalar.
    pub fn try_claim(&mut self, op: OpClass) -> bool {
        let (used, total): (&mut usize, usize) = match op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Load | OpClass::Store => {
                (&mut self.used_int_alu, self.int_alu)
            }
            OpClass::IntMul => (&mut self.used_int_mul, self.int_mul),
            OpClass::FpAlu => (&mut self.used_fp_alu, self.fp_alu),
            OpClass::FpMul => (&mut self.used_fp_mul, self.fp_mul),
        };
        if *used < total {
            *used += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert_eq!(op_latency(OpClass::IntAlu), 1);
        assert!(op_latency(OpClass::IntMul) > op_latency(OpClass::IntAlu));
        assert!(op_latency(OpClass::FpMul) > op_latency(OpClass::FpAlu));
    }

    #[test]
    fn pool_limits_per_cycle_claims() {
        let mut pool = FuPool::from_config(&CpuConfig::default());
        // 4 integer ALUs.
        for _ in 0..4 {
            assert!(pool.try_claim(OpClass::IntAlu));
        }
        assert!(!pool.try_claim(OpClass::IntAlu));
        // Only 1 integer multiplier.
        assert!(pool.try_claim(OpClass::IntMul));
        assert!(!pool.try_claim(OpClass::IntMul));
        // New cycle resets.
        pool.new_cycle();
        assert!(pool.try_claim(OpClass::IntAlu));
        assert!(pool.try_claim(OpClass::IntMul));
    }

    #[test]
    fn mem_ops_share_integer_alus() {
        let mut pool = FuPool::from_config(&CpuConfig::default());
        assert!(pool.try_claim(OpClass::Load));
        assert!(pool.try_claim(OpClass::Store));
        assert!(pool.try_claim(OpClass::Branch));
        assert!(pool.try_claim(OpClass::IntAlu));
        assert!(!pool.try_claim(OpClass::Load), "4 int ALUs exhausted");
    }
}
