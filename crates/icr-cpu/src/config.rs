//! Machine configuration — Table 1 of the paper.

/// Superscalar-core parameters (defaults reproduce Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued per cycle (paper: 4).
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Register update unit (reorder buffer) entries (paper: 16).
    pub ruu_size: usize,
    /// Load/store queue entries (paper: 8).
    pub lsq_size: usize,
    /// Integer ALU count (paper: 4).
    pub int_alu_units: usize,
    /// Integer multiplier/divider count (paper: 1).
    pub int_mul_units: usize,
    /// FP ALU count (paper: 4).
    pub fp_alu_units: usize,
    /// FP multiplier/divider count (paper: 1).
    pub fp_mul_units: usize,
    /// Branch misprediction penalty in cycles (paper: 3).
    pub mispredict_penalty: u64,
    /// Bimodal predictor table entries (paper: "bimodal 2KB table").
    pub bimodal_entries: usize,
    /// Two-level predictor pattern-table entries (paper: "two-level 1KB
    /// table, 8 bit history").
    pub two_level_entries: usize,
    /// Two-level history length in bits.
    pub history_bits: u32,
    /// Meta-chooser table entries for the combined predictor.
    pub chooser_entries: usize,
    /// BTB entries (paper: 512, 4-way).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            ruu_size: 16,
            lsq_size: 8,
            int_alu_units: 4,
            int_mul_units: 1,
            fp_alu_units: 4,
            fp_mul_units: 1,
            mispredict_penalty: 3,
            bimodal_entries: 2048,
            two_level_entries: 1024,
            history_bits: 8,
            chooser_entries: 1024,
            btb_entries: 512,
            btb_ways: 4,
        }
    }
}

impl CpuConfig {
    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ruu_size == 0 || self.lsq_size == 0 {
            return Err("RUU and LSQ must be non-empty".into());
        }
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.lsq_size > self.ruu_size {
            return Err("LSQ cannot out-size the RUU".into());
        }
        for (n, what) in [
            (self.bimodal_entries, "bimodal table"),
            (self.two_level_entries, "two-level table"),
            (self.chooser_entries, "chooser table"),
            (self.btb_entries, "BTB"),
        ] {
            if !n.is_power_of_two() {
                return Err(format!("{what} size must be a power of two"));
            }
        }
        if self.btb_ways == 0 || !self.btb_entries.is_multiple_of(self.btb_ways) {
            return Err("BTB ways must divide BTB entries".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.ruu_size, 16);
        assert_eq!(c.lsq_size, 8);
        assert_eq!(c.int_alu_units, 4);
        assert_eq!(c.int_mul_units, 1);
        assert_eq!(c.fp_alu_units, 4);
        assert_eq!(c.fp_mul_units, 1);
        assert_eq!(c.mispredict_penalty, 3);
        assert_eq!(c.btb_entries, 512);
        assert_eq!(c.btb_ways, 4);
        c.validate().unwrap();
    }

    #[test]
    fn lsq_larger_than_ruu_rejected() {
        let c = CpuConfig {
            lsq_size: 32,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_power_of_two_tables_rejected() {
        let c = CpuConfig {
            bimodal_entries: 1000,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
