//! The cycle-level out-of-order core: fetch → dispatch → issue → execute →
//! writeback → commit, in the style of SimpleScalar's `sim-outorder` RUU
//! machine.
//!
//! The model is trace-driven: the instruction stream is the correct path,
//! so branch mispredictions are charged as front-end stalls (fetch halts at
//! a mispredicted branch and resumes `penalty` cycles after it resolves)
//! rather than by executing wrong-path instructions. Everything else — the
//! 16-entry RUU, the 8-entry LSQ, 4-wide issue, functional-unit contention,
//! store-to-load forwarding and non-blocking loads — is modelled per cycle,
//! which is what lets the superscalar core *hide* part of the dL1 latency,
//! the effect the paper's Figure 9 turns on.

use crate::bpred::{Btb, Combined, DirPredictor};
use crate::config::CpuConfig;
use crate::fu::{op_latency, FuPool};
use crate::mem::{DataMemory, InstrMemory};
use icr_trace::{Inst, OpClass};
use std::collections::VecDeque;

/// Aggregate results of a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Branches committed.
    pub branches: u64,
    /// Branches that were mispredicted.
    pub mispredicts: u64,
    /// Sum of observed load latencies (for the mean).
    pub load_latency_sum: u64,
}

impl PipelineStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean observed load latency in cycles.
    pub fn mean_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued { done_at: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    inst: Inst,
    seq: u64,
    state: EntryState,
    /// Producer sequence numbers this entry waits on (snapshot at dispatch).
    deps: [Option<u64>; 2],
    mispredicted: bool,
    load_latency: u64,
}

/// The out-of-order core.
///
/// ```
/// use icr_cpu::{Pipeline, CpuConfig, PerfectMemory};
/// use icr_trace::{apps, TraceGenerator};
///
/// let mut cpu = Pipeline::new(CpuConfig::default());
/// let trace = TraceGenerator::new(apps::profile("gzip"), 1).take(10_000);
/// let stats = cpu.run(trace, &mut PerfectMemory, &mut PerfectMemory);
/// assert_eq!(stats.committed, 10_000);
/// assert!(stats.ipc() > 1.0); // 4-wide core on perfect memory
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: CpuConfig,
    bpred: Combined,
    btb: Btb,
}

impl Pipeline {
    /// Builds a core.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`CpuConfig::validate`].
    pub fn new(config: CpuConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid CPU config: {e}"));
        Pipeline {
            bpred: Combined::from_config(&config),
            btb: Btb::new(config.btb_entries, config.btb_ways),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Runs the core over `trace` until it is exhausted, against the given
    /// instruction and data memories. Returns the run's statistics.
    ///
    /// Use `trace.take(n)` to bound the instruction count.
    pub fn run<I>(
        &mut self,
        trace: I,
        imem: &mut dyn InstrMemory,
        dmem: &mut dyn DataMemory,
    ) -> PipelineStats
    where
        I: IntoIterator<Item = Inst>,
    {
        let mut trace = trace.into_iter().peekable();
        let cfg = self.config;
        let mut stats = PipelineStats::default();
        let mut ruu: VecDeque<Entry> = VecDeque::with_capacity(cfg.ruu_size);
        let mut head_seq: u64 = 0;
        let mut next_seq: u64 = 0;
        // Latest producer of each architectural register, by sequence.
        let mut reg_producer: [Option<u64>; 64] = [None; 64];
        let mut fu = FuPool::from_config(&cfg);
        let mut cycle: u64 = 0;
        // Front-end control.
        let mut fetch_resume: u64 = 0;
        let mut fetch_halted_by: Option<u64> = None;
        let mut commit_blocked_until: u64 = 0;
        // Memory ops resident in the RUU (the LSQ occupancy), maintained
        // incrementally instead of rescanning the RUU per fetch.
        let mut mem_in_flight: usize = 0;
        // Incremental occupancy bookkeeping, so the writeback and issue
        // scans run only on cycles where they can transition something:
        // how many entries are Issued and the earliest cycle any of them
        // completes (u64::MAX when none), and how many are Waiting.
        let mut issued_cnt: usize = 0;
        let mut next_done: u64 = u64::MAX;
        let mut waiting_cnt: usize = 0;

        let entry_done = |ruu: &VecDeque<Entry>, head: u64, seq: u64| -> bool {
            if seq < head {
                return true; // already committed
            }
            match ruu.get((seq - head) as usize) {
                Some(e) => e.state == EntryState::Done,
                None => true,
            }
        };

        loop {
            // ---- Writeback: finish execution, resolve branches. ----
            // The scan can only transition entries when some Issued op has
            // reached its completion cycle; `next_done` tracks the
            // earliest one, so most cycles skip the scan outright.
            let mut wrote_back = 0usize;
            if issued_cnt > 0 && next_done <= cycle {
                let mut resolved_halt: Option<u64> = None;
                let mut remaining_next = u64::MAX;
                for e in ruu.iter_mut() {
                    if let EntryState::Issued { done_at } = e.state {
                        if done_at <= cycle {
                            e.state = EntryState::Done;
                            wrote_back += 1;
                            issued_cnt -= 1;
                            if e.mispredicted && fetch_halted_by == Some(e.seq) {
                                resolved_halt = Some(done_at + cfg.mispredict_penalty);
                            }
                        } else {
                            remaining_next = remaining_next.min(done_at);
                        }
                    }
                }
                next_done = remaining_next;
                if let Some(resume) = resolved_halt {
                    fetch_halted_by = None;
                    fetch_resume = fetch_resume.max(resume);
                }
            }

            // ---- Commit: retire completed head entries in order. ----
            let mut committed_now = 0;
            if cycle >= commit_blocked_until {
                while committed_now < cfg.commit_width {
                    let Some(head) = ruu.front() else { break };
                    if head.state != EntryState::Done {
                        break;
                    }
                    let e = ruu.pop_front().expect("front exists");
                    head_seq = e.seq + 1;
                    stats.committed += 1;
                    if e.inst.op.is_mem() {
                        mem_in_flight -= 1;
                    }
                    committed_now += 1;
                    match e.inst.op {
                        OpClass::Load => {
                            stats.loads += 1;
                            stats.load_latency_sum += e.load_latency;
                        }
                        OpClass::Store => {
                            stats.stores += 1;
                            // The dL1 write (and any ICR replication)
                            // happens at retire.
                            let lat = dmem.store(e.inst.mem_addr.expect("store has addr"), cycle);
                            if lat > 1 {
                                commit_blocked_until = cycle + lat - 1;
                            }
                        }
                        OpClass::Branch => {
                            stats.branches += 1;
                            if e.mispredicted {
                                stats.mispredicts += 1;
                            }
                        }
                        _ => {}
                    }
                    // Retire the register mapping if this was the last
                    // producer.
                    if let Some(d) = e.inst.dest {
                        if reg_producer[d.0 as usize] == Some(e.seq) {
                            reg_producer[d.0 as usize] = None;
                        }
                    }
                    if e.inst.op == OpClass::Store && commit_blocked_until > cycle {
                        break; // a stalled store blocks younger commits
                    }
                }
            }

            // ---- Issue: start ready waiting entries, oldest first. ----
            // Skipped when nothing is Waiting; the FU pool's per-cycle
            // counters only matter to `try_claim`, so resetting them is
            // deferred to cycles that can actually issue.
            let mut issued = 0;
            let waiting_at_start = waiting_cnt;
            if waiting_at_start > 0 {
                fu.new_cycle();
                let mut waiting_seen = 0;
                for i in 0..ruu.len() {
                    if issued == cfg.issue_width || waiting_seen == waiting_at_start {
                        break;
                    }
                    if ruu[i].state != EntryState::Waiting {
                        continue;
                    }
                    waiting_seen += 1;
                    let deps_ready = ruu[i]
                        .deps
                        .iter()
                        .flatten()
                        .all(|&d| entry_done(&ruu, head_seq, d));
                    if !deps_ready {
                        continue;
                    }
                    // Loads must respect older same-word stores (no
                    // speculation past unresolved conflicting stores; forward
                    // from completed ones).
                    let mut load_forwarded = false;
                    if ruu[i].inst.op == OpClass::Load {
                        let my_word = ruu[i].inst.mem_addr.expect("load has addr") >> 3;
                        let my_seq = ruu[i].seq;
                        let mut blocked = false;
                        for e in ruu.iter() {
                            if e.seq >= my_seq {
                                break;
                            }
                            if e.inst.op == OpClass::Store
                                && e.inst.mem_addr.map(|a| a >> 3) == Some(my_word)
                            {
                                if e.state == EntryState::Done {
                                    load_forwarded = true; // will forward
                                } else {
                                    blocked = true; // store not executed yet
                                    break;
                                }
                            }
                        }
                        if blocked {
                            continue;
                        }
                    }
                    if !fu.try_claim(ruu[i].inst.op) {
                        continue;
                    }
                    let lat = match ruu[i].inst.op {
                        OpClass::Load => {
                            let lat = if load_forwarded {
                                1
                            } else {
                                dmem.load(ruu[i].inst.mem_addr.expect("load has addr"), cycle)
                            };
                            ruu[i].load_latency = lat;
                            lat
                        }
                        op => op_latency(op),
                    };
                    let done_at = cycle + lat;
                    ruu[i].state = EntryState::Issued { done_at };
                    issued += 1;
                    waiting_cnt -= 1;
                    issued_cnt += 1;
                    next_done = next_done.min(done_at);
                }
            }

            // ---- Fetch/dispatch: bring in new instructions. ----
            let mut fetched = 0;
            if fetch_halted_by.is_none() && cycle >= fetch_resume {
                while fetched < cfg.fetch_width {
                    if ruu.len() >= cfg.ruu_size {
                        break;
                    }
                    let Some(next) = trace.peek() else { break };
                    if next.op.is_mem() && mem_in_flight >= cfg.lsq_size {
                        break;
                    }
                    let inst = trace.next().expect("peeked");
                    if inst.op.is_mem() {
                        mem_in_flight += 1;
                    }
                    let flat = imem.fetch(inst.pc, cycle);
                    let mut ends_group = false;
                    if flat > 1 {
                        // icache miss: this group ends and fetch resumes
                        // when the line arrives.
                        fetch_resume = cycle + flat - 1;
                        ends_group = true;
                    }
                    let seq = next_seq;
                    next_seq += 1;
                    let deps = [
                        inst.srcs[0].and_then(|r| reg_producer[r.0 as usize]),
                        inst.srcs[1].and_then(|r| reg_producer[r.0 as usize]),
                    ];
                    let mut mispredicted = false;
                    if inst.op == OpClass::Branch {
                        let pred_taken = self.bpred.predict(inst.pc);
                        let pred_target = self.btb.lookup(inst.pc);
                        mispredicted = pred_taken != inst.taken
                            || (inst.taken && pred_target != Some(inst.target));
                        self.bpred.update(inst.pc, inst.taken);
                        if inst.taken {
                            self.btb.update(inst.pc, inst.target);
                            ends_group = true; // taken branch ends the group
                        }
                        if mispredicted {
                            fetch_halted_by = Some(seq);
                            ends_group = true;
                        }
                    }
                    if let Some(d) = inst.dest {
                        reg_producer[d.0 as usize] = Some(seq);
                    }
                    ruu.push_back(Entry {
                        inst,
                        seq,
                        state: EntryState::Waiting,
                        deps,
                        mispredicted,
                        load_latency: 0,
                    });
                    waiting_cnt += 1;
                    fetched += 1;
                    if ends_group {
                        break;
                    }
                }
            }

            // ---- Idle-cycle skip. ----
            // A cycle that wrote back, committed, issued and fetched
            // nothing leaves the whole machine state untouched: every
            // per-cycle scan above is then a pure function of time, and
            // re-running it yields the same nothing until the next timed
            // event. Jump straight there. The only timed events are an
            // in-flight op completing (its `done_at`), a stalled store's
            // commit block expiring over an already-Done head, and the
            // front end's `fetch_resume`; everything else can only change
            // as a consequence of one of those. This is a pure wall-clock
            // optimisation — `cycle` takes exactly the values at which the
            // naive loop would have done work, so results are bit-exact.
            if wrote_back == 0 && committed_now == 0 && issued == 0 && fetched == 0 {
                // `next_done` is exactly min done_at over Issued entries
                // (u64::MAX when none) — no rescan needed.
                let mut event = next_done;
                if commit_blocked_until > cycle
                    && ruu.front().is_some_and(|h| h.state == EntryState::Done)
                {
                    event = event.min(commit_blocked_until);
                }
                if fetch_halted_by.is_none() && fetch_resume > cycle && trace.peek().is_some() {
                    event = event.min(fetch_resume);
                }
                if event != u64::MAX && event > cycle + 1 {
                    cycle = event;
                    continue;
                }
            }

            cycle += 1;
            if ruu.is_empty() && trace.peek().is_none() {
                break;
            }
            // Safety valve: a cycle-level model must always make progress;
            // a hang here is a bug, so fail loudly rather than spin.
            assert!(
                cycle < stats.committed.max(1) * 1000 + 1_000_000,
                "pipeline stopped making progress at cycle {cycle}"
            );
        }
        stats.cycles = cycle;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{FixedLatencyMemory, PerfectMemory};
    use icr_trace::{apps, Reg, TraceGenerator};

    fn run_app(app: &str, n: usize, dmem: &mut dyn DataMemory) -> PipelineStats {
        let mut cpu = Pipeline::new(CpuConfig::default());
        let trace = TraceGenerator::new(apps::profile(app), 1).take(n);
        cpu.run(trace, &mut PerfectMemory, dmem)
    }

    #[test]
    fn commits_every_instruction() {
        let stats = run_app("gzip", 20_000, &mut PerfectMemory);
        assert_eq!(stats.committed, 20_000);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn ipc_is_superscalar_but_bounded() {
        let stats = run_app("gzip", 20_000, &mut PerfectMemory);
        let ipc = stats.ipc();
        assert!(ipc > 1.0, "4-wide core should exceed 1 IPC, got {ipc:.2}");
        assert!(ipc <= 4.0, "cannot exceed machine width, got {ipc:.2}");
    }

    #[test]
    fn slower_loads_cost_cycles() {
        let fast = run_app("gzip", 20_000, &mut PerfectMemory);
        let mut slow_mem = FixedLatencyMemory {
            load_latency: 2,
            store_latency: 1,
        };
        let slow = run_app("gzip", 20_000, &mut slow_mem);
        assert!(
            slow.cycles > fast.cycles,
            "2-cycle loads must cost cycles: {} vs {}",
            slow.cycles,
            fast.cycles
        );
        // But the OoO core hides part of it: the slowdown is less than the
        // full extra cycle per load.
        let hidden = (slow.cycles - fast.cycles) as f64;
        assert!(
            hidden < fast.loads as f64,
            "OoO must hide some load latency: {hidden} extra cycles for {} loads",
            fast.loads
        );
    }

    #[test]
    fn very_slow_memory_dominates_runtime() {
        let mut mem = FixedLatencyMemory {
            load_latency: 100,
            store_latency: 1,
        };
        let stats = run_app("gzip", 5_000, &mut mem);
        assert!(
            stats.ipc() < 1.0,
            "100-cycle loads should crush IPC, got {:.2}",
            stats.ipc()
        );
    }

    #[test]
    fn branch_prediction_learns_the_program() {
        let stats = run_app("mesa", 50_000, &mut PerfectMemory);
        // mesa's profile is highly predictable (0.94).
        assert!(
            stats.mispredict_rate() < 0.15,
            "predictable code should predict well, got {:.3}",
            stats.mispredict_rate()
        );
    }

    #[test]
    fn gcc_mispredicts_more_than_mesa() {
        let mesa = run_app("mesa", 50_000, &mut PerfectMemory);
        let gcc = run_app("gcc", 50_000, &mut PerfectMemory);
        assert!(
            gcc.mispredict_rate() > mesa.mispredict_rate(),
            "gcc {:.3} should out-mispredict mesa {:.3}",
            gcc.mispredict_rate(),
            mesa.mispredict_rate()
        );
    }

    #[test]
    fn counts_match_trace_mix() {
        let n = 30_000;
        let trace: Vec<_> = TraceGenerator::new(apps::profile("vortex"), 1)
            .take(n)
            .collect();
        let expected_loads = trace.iter().filter(|i| i.op == OpClass::Load).count() as u64;
        let expected_stores = trace.iter().filter(|i| i.op == OpClass::Store).count() as u64;
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(trace, &mut PerfectMemory, &mut PerfectMemory);
        assert_eq!(stats.loads, expected_loads);
        assert_eq!(stats.stores, expected_stores);
    }

    #[test]
    fn store_to_load_forwarding_hides_memory() {
        // A long-latency load holds up in-order commit; behind it, a store
        // to X executes and a load of X must forward from the LSQ instead
        // of paying memory latency again.
        let insts = vec![
            Inst::load(0x100, 0x9000, Reg(9), None),
            Inst::store(0x104, 0x8000, Reg(1), None),
            Inst::load(0x108, 0x8000, Reg(2), None),
        ];
        let mut mem = FixedLatencyMemory {
            load_latency: 50,
            store_latency: 1,
        };
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(insts, &mut PerfectMemory, &mut mem);
        assert_eq!(stats.committed, 3);
        assert!(
            stats.cycles < 70,
            "second load must forward, not serialise: took {}",
            stats.cycles
        );
        assert_eq!(
            stats.load_latency_sum, 51,
            "first load pays 50, forwarded load pays 1"
        );
    }

    #[test]
    fn dependent_chain_serialises() {
        // A chain of dependent adds cannot exceed 1 IPC.
        let insts: Vec<_> = (0..1000)
            .map(|i| Inst::alu(0x100 + i * 4, OpClass::IntAlu, Reg(1), [Some(Reg(1)), None]))
            .collect();
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(insts, &mut PerfectMemory, &mut PerfectMemory);
        assert!(
            stats.cycles >= 1000,
            "dependent chain must serialise, took {}",
            stats.cycles
        );
    }

    #[test]
    fn independent_ops_run_wide() {
        // Independent adds across many registers should push IPC toward 4
        // (bounded by the 4 integer ALUs).
        let insts: Vec<_> = (0..4000u64)
            .map(|i| {
                Inst::alu(
                    0x100 + i * 4,
                    OpClass::IntAlu,
                    Reg((i % 24) as u8),
                    [None, None],
                )
            })
            .collect();
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(insts, &mut PerfectMemory, &mut PerfectMemory);
        assert!(
            stats.ipc() > 2.5,
            "independent adds should run wide, got {:.2}",
            stats.ipc()
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut cpu = Pipeline::new(CpuConfig::default());
        let stats = cpu.run(Vec::new(), &mut PerfectMemory, &mut PerfectMemory);
        assert_eq!(stats.committed, 0);
    }
}
