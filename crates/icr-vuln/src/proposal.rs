//! Importance-sampling proposal for the fault injector, derived from
//! the exposure ledger's residency windows.
//!
//! The Monte-Carlo campaign wastes most of its trials confirming that
//! recoverable strikes recover: under the single-bit model, data loss
//! only comes out of *dirty parity-protected primary* residency. A
//! strike on a clean line refetches from L2, SEC-DED corrects, and a
//! replica never holds the sole copy — but a dirty primary is
//! loss-prone even while replicated, because the replica can be
//! evicted, spilled out, or bypassed (laundering) before the corrupted
//! word is consumed. In the ledger's vocabulary that residency is
//! [`ProtState::DirtyParity`] plus [`ProtState::Replicated`] (ICR
//! replicates dirty lines, so replicated primaries are dirty ones).
//! When the loss-prone region is a fraction `f` of total exposure, a
//! uniform site draw spends `1/f` trials per observation inside it.
//!
//! [`InjectionProposal::from_windows`] turns one fault-free profiling
//! run's [`ExposureWindows`] into a site-bias factor for the injector:
//! loss-prone sites are drawn `dirty_boost ≈ 1/f` times as often as
//! everything else, which roughly equalizes the sampling effort spent
//! on the rare-loss region against everything else and shrinks the
//! loss-rate estimator's variance by up to the same factor. The boost
//! only shapes *variance* — unbiasedness comes from the per-trial
//! likelihood ratio the injector reports, whatever the boost — so
//! deriving it from time-averaged residency and applying it to
//! instantaneous line states is sound.
//!
//! The injector applies the same boost to a second strike-worthy
//! class this crate cannot see (it needs the trace, not the ledger):
//! clean parity primaries holding the workload's store working set,
//! through which a strike can *launder* — a later store dirties the
//! line and replication re-encodes the corrupted word under clean
//! parity. See `FaultInjector::with_hot_blocks`. The campaign layer
//! additionally forces each importance trial's *arrival* from the
//! exact conditional-on-delivery distribution
//! (`icr_fault::conditional_arrival`), which carries likelihood
//! ratio 1 and is orthogonal to this site proposal.

use crate::ledger::{ExposureWindows, ProtState};

/// A site-bias proposal for importance-sampled fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionProposal {
    /// How many times more often a loss-prone line (a dirty
    /// parity-protected primary, replicated or not) is drawn than any
    /// other site. `1.0` means the uniform draw.
    pub dirty_boost: f64,
    /// The profiled fraction of valid residency that is loss-prone —
    /// [`ProtState::DirtyParity`] plus [`ProtState::Replicated`]
    /// (diagnostic; `0.0` when the profile saw no valid residency at
    /// all).
    pub dirty_fraction: f64,
}

impl InjectionProposal {
    /// Cap on [`dirty_boost`](Self::dirty_boost). Bounding the boost
    /// bounds the weight spread (the smallest likelihood ratio is
    /// ≈ `1/MAX_BOOST`), which keeps the effective sample size from
    /// collapsing when the profile *underestimates* how much dirty
    /// residency the faulted runs will actually see.
    pub const MAX_BOOST: f64 = 64.0;

    /// Derives the proposal from a fault-free run's residency windows:
    /// `dirty_boost = clamp(total / loss_prone, 1, MAX_BOOST)`, the
    /// inverse of the loss-prone residency fraction, where `loss_prone`
    /// is [`ProtState::DirtyParity`] plus [`ProtState::Replicated`]
    /// residency. Profiles with no loss-prone residency at all get the
    /// maximum boost — if faulted runs never see the state either, the
    /// proposal degenerates to uniform at runtime (the injector weights
    /// an all-clean draw at exactly 1) — and an empty profile falls
    /// back to uniform.
    pub fn from_windows(windows: &ExposureWindows) -> InjectionProposal {
        let total = windows.total_word_cycles;
        let dirty = windows.residency_of(ProtState::DirtyParity)
            + windows.residency_of(ProtState::Replicated);
        if total == 0 {
            return InjectionProposal {
                dirty_boost: 1.0,
                dirty_fraction: 0.0,
            };
        }
        if dirty == 0 {
            return InjectionProposal {
                dirty_boost: Self::MAX_BOOST,
                dirty_fraction: 0.0,
            };
        }
        let fraction = dirty as f64 / total as f64;
        InjectionProposal {
            dirty_boost: (1.0 / fraction).clamp(1.0, Self::MAX_BOOST),
            dirty_fraction: fraction,
        }
    }

    /// `true` when the proposal is exactly the uniform draw.
    pub fn is_uniform(&self) -> bool {
        self.dirty_boost == 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_with(total: u128, dirty: u128) -> ExposureWindows {
        let mut w = ExposureWindows {
            cycles: 1000,
            residency: Default::default(),
            weighted_residency: Default::default(),
            consumed: Default::default(),
            weighted_consumed: Default::default(),
            total_word_cycles: total,
            total_weight: 1.0,
        };
        w.residency[ProtState::DirtyParity.index()] = dirty;
        w.residency[ProtState::CleanParity.index()] = total - dirty;
        w
    }

    #[test]
    fn boost_is_the_inverse_dirty_fraction() {
        let p = InjectionProposal::from_windows(&windows_with(1000, 100));
        assert!((p.dirty_boost - 10.0).abs() < 1e-12);
        assert!((p.dirty_fraction - 0.1).abs() < 1e-12);
        assert!(!p.is_uniform());
    }

    #[test]
    fn boost_clamps_at_the_cap_and_at_uniform() {
        let rare = InjectionProposal::from_windows(&windows_with(1_000_000, 1));
        assert_eq!(rare.dirty_boost, InjectionProposal::MAX_BOOST);
        let all_dirty = InjectionProposal::from_windows(&windows_with(1000, 1000));
        assert_eq!(all_dirty.dirty_boost, 1.0);
        assert!(all_dirty.is_uniform());
    }

    #[test]
    fn degenerate_profiles_stay_usable() {
        let empty = InjectionProposal::from_windows(&windows_with(0, 0));
        assert!(empty.is_uniform());
        assert_eq!(empty.dirty_fraction, 0.0);
        let never_dirty = InjectionProposal::from_windows(&windows_with(1000, 0));
        assert_eq!(never_dirty.dirty_boost, InjectionProposal::MAX_BOOST);
    }
}
