//! Rate summaries: turning raw consumed windows into expected outcome
//! counts, FIT and MTTF under a uniform raw bit-flip rate.

use crate::ledger::{ExposureWindows, VulnClass};

/// Seconds per hour, for FIT/MTTF conversions.
const SECONDS_PER_HOUR: f64 = 3_600.0;

/// A uniform raw soft-error process: independent single-bit flips as a
/// Poisson process with a fixed per-bit-cycle rate. Applied to an
/// [`ExposureWindows`] snapshot it yields expected outcome counts and
/// the usual reliability summaries (failure rate, MTTF, FIT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnModel {
    /// Expected raw flips per bit per cycle.
    pub flips_per_bit_cycle: f64,
    /// Bits per cache word exposed to strikes (64 data + 8 check bits
    /// in the paper's layout; a check-bit strike trips the same checks
    /// as a data-bit strike, so the classes are unchanged).
    pub bits_per_word: u32,
    /// Core clock, for converting cycle-denominated rates to wall time.
    pub clock_hz: f64,
}

impl VulnModel {
    /// The rate used throughout the repo's examples: a 1e-3 FIT/bit
    /// raw cell rate at the paper's 2 GHz clock.
    pub fn paper_default() -> Self {
        // 1e-3 FIT/bit = 1e-12 flips/bit/hour.
        let clock_hz = 2.0e9;
        VulnModel {
            flips_per_bit_cycle: 1.0e-12 / SECONDS_PER_HOUR / clock_hz,
            bits_per_word: 72,
            clock_hz,
        }
    }

    /// Expected raw flips per word per cycle.
    pub fn flips_per_word_cycle(&self) -> f64 {
        self.flips_per_bit_cycle * f64::from(self.bits_per_word)
    }

    /// Expected number of strikes consumed as `class` over the run:
    /// rate × raw consumed word-cycles.
    pub fn expected_count(&self, w: &ExposureWindows, class: VulnClass) -> f64 {
        self.flips_per_word_cycle() * w.consumed_of(class) as f64
    }

    /// Expected failures (unrecoverable + laundered strikes) over the
    /// run.
    pub fn expected_failures(&self, w: &ExposureWindows) -> f64 {
        self.expected_count(w, VulnClass::Unrecoverable)
            + self.expected_count(w, VulnClass::Laundered)
    }

    /// Failure rate per cycle: expected failures divided by the run's
    /// cycle count (`0` for an empty run).
    pub fn failure_rate_per_cycle(&self, w: &ExposureWindows) -> f64 {
        if w.cycles == 0 {
            0.0
        } else {
            self.expected_failures(w) / w.cycles as f64
        }
    }

    /// Mean time to failure, in cycles (`f64::INFINITY` when no failure
    /// window was consumed).
    pub fn mttf_cycles(&self, w: &ExposureWindows) -> f64 {
        let rate = self.failure_rate_per_cycle(w);
        if rate > 0.0 {
            1.0 / rate
        } else {
            f64::INFINITY
        }
    }

    /// Mean time to failure, in hours at [`VulnModel::clock_hz`].
    pub fn mttf_hours(&self, w: &ExposureWindows) -> f64 {
        self.mttf_cycles(w) / self.clock_hz / SECONDS_PER_HOUR
    }

    /// Failures in time: expected failures per 10⁹ device-hours.
    pub fn fit(&self, w: &ExposureWindows) -> f64 {
        let mttf = self.mttf_hours(w);
        if mttf.is_finite() {
            1.0e9 / mttf
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{ExposureLedger, ProtState};

    fn windows_with_unrecoverable(cycles: u64, consumed: u64) -> ExposureWindows {
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::DirtyParity, 0);
        l.consume_word(0, 0, VulnClass::Unrecoverable, consumed);
        l.windows(cycles)
    }

    #[test]
    fn expected_counts_scale_with_consumed_windows() {
        let m = VulnModel::paper_default();
        let w1 = windows_with_unrecoverable(1_000, 100);
        let w2 = windows_with_unrecoverable(1_000, 200);
        assert!(m.expected_count(&w1, VulnClass::Unrecoverable) > 0.0);
        assert!(
            (m.expected_count(&w2, VulnClass::Unrecoverable)
                / m.expected_count(&w1, VulnClass::Unrecoverable)
                - 2.0)
                .abs()
                < 1e-9
        );
        assert_eq!(m.expected_count(&w1, VulnClass::ByEcc), 0.0);
    }

    #[test]
    fn mttf_and_fit_are_consistent() {
        let m = VulnModel::paper_default();
        let w = windows_with_unrecoverable(1_000, 500);
        let mttf_h = m.mttf_hours(&w);
        assert!(mttf_h.is_finite() && mttf_h > 0.0);
        assert!((m.fit(&w) * mttf_h - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn no_failure_windows_means_infinite_mttf_zero_fit() {
        let m = VulnModel::paper_default();
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::Ecc, 0);
        l.consume_word(0, 0, VulnClass::ByEcc, 400);
        let w = l.windows(1_000);
        assert_eq!(m.mttf_cycles(&w), f64::INFINITY);
        assert_eq!(m.fit(&w), 0.0);
    }

    #[test]
    fn paper_default_matches_stated_raw_rate() {
        let m = VulnModel::paper_default();
        // 1e-3 FIT/bit: flips/bit/hour = 1e-12 ⇒ per cycle at 2 GHz.
        let per_hour = m.flips_per_bit_cycle * m.clock_hz * 3_600.0;
        assert!((per_hour - 1.0e-12).abs() < 1e-24);
    }
}
