//! The protection-state lifetime machine: per-line residency windows and
//! per-word consumed (ACE) windows, raw and arrival-weighted.

/// Number of [`ProtState`] residency states.
pub const NSTATES: usize = 5;
/// Number of [`VulnClass`] consumption classes.
pub const NCLASSES: usize = 5;

/// The protection state a valid cache line is in at an instant. Every
/// valid line is in exactly one state, so per-state residency windows
/// partition total valid residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtState {
    /// Parity-protected primary with at least one live replica.
    Replicated,
    /// Clean, unreplicated, parity-protected primary.
    CleanParity,
    /// Dirty, unreplicated, parity-protected primary — the paper's
    /// worst case: a strike here is detected but unrecoverable.
    DirtyParity,
    /// Unreplicated SEC-DED primary (the ECC schemes' resting state).
    Ecc,
    /// A replica line (always parity, always clean).
    Replica,
}

impl ProtState {
    /// Every state, in report order.
    pub const ALL: [ProtState; NSTATES] = [
        ProtState::Replicated,
        ProtState::CleanParity,
        ProtState::DirtyParity,
        ProtState::Ecc,
        ProtState::Replica,
    ];

    /// Index into the per-state accumulator arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as the JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            ProtState::Replicated => "replicated",
            ProtState::CleanParity => "clean_parity",
            ProtState::DirtyParity => "dirty_parity",
            ProtState::Ecc => "ecc",
            ProtState::Replica => "replica",
        }
    }
}

/// How a single-bit strike inside a consumed window would have ended —
/// the recovery ladder available at the check that observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VulnClass {
    /// Healed by reading a live replica.
    ByReplica,
    /// Corrected in place by SEC-DED.
    ByEcc,
    /// Detected on a clean line and refetched from below (L2 or a
    /// duplication cache).
    ByRefetch,
    /// Detected but unrecoverable: dirty, unreplicated, parity-only.
    Unrecoverable,
    /// The stored bits were trusted while re-encoding or while seeding a
    /// new replica: a latent strike is baked into a clean codeword and
    /// consumed silently later.
    Laundered,
}

impl VulnClass {
    /// Every class, in report order.
    pub const ALL: [VulnClass; NCLASSES] = [
        VulnClass::ByReplica,
        VulnClass::ByEcc,
        VulnClass::ByRefetch,
        VulnClass::Unrecoverable,
        VulnClass::Laundered,
    ];

    /// Index into the per-class accumulator arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as the JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            VulnClass::ByReplica => "by_replica",
            VulnClass::ByEcc => "by_ecc",
            VulnClass::ByRefetch => "by_refetch",
            VulnClass::Unrecoverable => "unrecoverable",
            VulnClass::Laundered => "laundered",
        }
    }

    /// `true` when the consumer got correct data back despite the
    /// strike.
    pub fn is_recovered(self) -> bool {
        matches!(
            self,
            VulnClass::ByReplica | VulnClass::ByEcc | VulnClass::ByRefetch
        )
    }
}

/// The fault-arrival process the weighted windows integrate against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// One strike at a uniformly random instant of the run (the
    /// default): every cycle with a non-empty cache weighs the same.
    Uniform,
    /// One strike at a geometrically distributed arrival: a per-cycle
    /// Bernoulli with probability `p`, deferred while the cache is
    /// empty — exactly the Monte-Carlo injector's one-shot process.
    Geometric {
        /// Per-cycle arrival probability (0 < p < 1).
        p: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct LineTrack {
    active: bool,
    state: ProtState,
    /// Cycle the current residency window opened.
    since: u64,
    /// Weighted clock at window open.
    wsince: f64,
}

/// How a line's stored bits were trusted when a laundering event
/// re-coded them (see [`ExposureLedger::launder_line`]). The two kinds
/// surface differently at the next observation of the word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunderKind {
    /// The stored bits were *copied out* under a fresh code (seeding a
    /// replica) while the original word kept its old check bits: a
    /// latent strike is still detected at the next load, but recovery
    /// returns the laundered copy — the machine counts a successful
    /// replica recovery, and only a *second* observation can expose
    /// the wrong data.
    Copy,
    /// The word itself was re-encoded in place under a new code
    /// (re-protection on a replication-status change): a latent strike
    /// is sealed under clean check bits and the very next load
    /// consumes wrong data.
    InPlace,
}

#[derive(Debug, Clone, Copy)]
struct WordSnap {
    /// Cycle of the word's last refresh/consume.
    cycle: u64,
    /// Weighted clock at that instant.
    g: f64,
    /// Pending laundering boundary: strikes between the snapshot and
    /// this instant were trusted into a re-code (time, weighted clock,
    /// kind). `None` when the window is plain.
    launder: Option<(u64, f64, LaunderKind)>,
    /// A copy-laundered segment already observed once: the machine
    /// counted a replica recovery, but a second observation before any
    /// refresh reveals the laundered bits (raw cycles, arrival mass).
    provisional: Option<(u64, f64)>,
}

impl WordSnap {
    fn fresh(cycle: u64, g: f64) -> Self {
        WordSnap {
            cycle,
            g,
            launder: None,
            provisional: None,
        }
    }
}

/// The lifetime machine. The owner (the dL1) reports line transitions
/// and word events; the ledger accumulates residency and consumed
/// windows. Time may be reported non-monotonically by an out-of-order
/// core; the ledger clamps every event to its internal clock, which
/// keeps all windows non-negative and the partition exact.
#[derive(Debug, Clone)]
pub struct ExposureLedger {
    words_per_line: usize,
    arrival: Arrival,
    /// Last event time.
    clock: u64,
    /// Per-word weighted clock: `∫ f(t) / V(t) dt` over cycles with at
    /// least one valid word.
    gclock: f64,
    /// Survival probability of the geometric arrival (no strike yet);
    /// `1.0` under [`Arrival::Uniform`] (unused).
    survival: f64,
    /// Total arrival weight delivered: `∫ f(t) dt` over non-empty
    /// cycles.
    total_weight: f64,
    valid_lines: usize,
    /// Independently accumulated total valid word-cycles — the
    /// partition property's right-hand side.
    total_word_cycles: u128,
    lines: Vec<LineTrack>,
    snaps: Vec<WordSnap>,
    residency: [u128; NSTATES],
    wresidency: [f64; NSTATES],
    consumed: [u128; NCLASSES],
    wconsumed: [f64; NCLASSES],
}

impl ExposureLedger {
    /// A ledger for a cache of `lines` lines of `words_per_line` words,
    /// with uniform arrival weighting.
    pub fn new(lines: usize, words_per_line: usize) -> Self {
        assert!(words_per_line > 0, "lines need at least one word");
        ExposureLedger {
            words_per_line,
            arrival: Arrival::Uniform,
            clock: 0,
            gclock: 0.0,
            survival: 1.0,
            total_weight: 0.0,
            valid_lines: 0,
            total_word_cycles: 0,
            lines: vec![
                LineTrack {
                    active: false,
                    state: ProtState::CleanParity,
                    since: 0,
                    wsince: 0.0,
                };
                lines
            ],
            snaps: vec![WordSnap::fresh(0, 0.0); lines * words_per_line],
            residency: [0; NSTATES],
            wresidency: [0.0; NSTATES],
            consumed: [0; NCLASSES],
            wconsumed: [0.0; NCLASSES],
        }
    }

    /// Words per line.
    pub fn words_per_line(&self) -> usize {
        self.words_per_line
    }

    /// Total line slots tracked (active or not).
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Appends `n` inactive line slots to the ledger, returning the
    /// index of the first new slot.
    ///
    /// Sound at any point of a run: inactive lines contribute nothing
    /// to residency, the valid-word integral or the partition check, so
    /// growing the slot space mid-flight (e.g. lazily attaching the L2
    /// replica region the first time a scheme spills) leaves every
    /// accumulated window untouched.
    pub fn add_lines(&mut self, n: usize) -> usize {
        let first = self.lines.len();
        self.lines.extend(std::iter::repeat_n(
            LineTrack {
                active: false,
                state: ProtState::CleanParity,
                since: self.clock,
                wsince: self.gclock,
            },
            n,
        ));
        self.snaps.extend(std::iter::repeat_n(
            WordSnap::fresh(self.clock, self.gclock),
            n * self.words_per_line,
        ));
        first
    }

    /// The arrival model in force.
    pub fn arrival(&self) -> Arrival {
        self.arrival
    }

    /// Selects the arrival model the weighted windows integrate
    /// against. Must be called before any time has passed.
    ///
    /// # Panics
    ///
    /// Panics if events were already recorded, or if a geometric `p` is
    /// outside `(0, 1)`.
    pub fn set_arrival(&mut self, arrival: Arrival) {
        assert!(
            self.clock == 0 && self.total_word_cycles == 0,
            "arrival model must be chosen before any traffic"
        );
        if let Arrival::Geometric { p } = arrival {
            assert!(p > 0.0 && p < 1.0, "geometric arrival needs 0 < p < 1");
        }
        self.arrival = arrival;
    }

    /// Number of lines currently tracked as valid.
    pub fn valid_line_count(&self) -> usize {
        self.valid_lines
    }

    /// The state the ledger currently tracks for `line`, if valid.
    pub fn line_state(&self, line: usize) -> Option<ProtState> {
        let l = &self.lines[line];
        l.active.then_some(l.state)
    }

    /// Words currently resident in `state` (an instantaneous snapshot,
    /// the lifetime-machine counterpart of the dL1's
    /// `vulnerable_word_count`).
    pub fn words_in(&self, state: ProtState) -> usize {
        self.lines
            .iter()
            .filter(|l| l.active && l.state == state)
            .count()
            * self.words_per_line
    }

    /// Advances the global clocks to `now` (clamped monotone) and
    /// returns the effective event time.
    fn advance_to(&mut self, now: u64) -> u64 {
        let t = now.max(self.clock);
        if t > self.clock {
            let dt = t - self.clock;
            if self.valid_lines > 0 {
                let vwords = (self.valid_lines * self.words_per_line) as f64;
                self.total_word_cycles +=
                    (self.valid_lines * self.words_per_line) as u128 * u128::from(dt);
                let mass = match self.arrival {
                    Arrival::Uniform => dt as f64,
                    Arrival::Geometric { p } => {
                        // Survival decays only while a strike can land;
                        // the injector retries over empty caches.
                        let q = 1.0 - p;
                        let next = self.survival * (dt as f64 * q.ln()).exp();
                        let mass = (self.survival - next).max(0.0);
                        self.survival = next;
                        mass
                    }
                };
                self.total_weight += mass;
                self.gclock += mass / vwords;
            }
            self.clock = t;
        }
        t
    }

    fn snap_base(&self, line: usize) -> usize {
        line * self.words_per_line
    }

    /// Opens a residency window: `line` became valid in `state` at
    /// `now`. All of its word snapshots are refreshed (a fill encodes
    /// every word).
    pub fn begin_line(&mut self, line: usize, state: ProtState, now: u64) {
        let t = self.advance_to(now);
        let g = self.gclock;
        debug_assert!(!self.lines[line].active, "begin on an active line");
        self.lines[line] = LineTrack {
            active: true,
            state,
            since: t,
            wsince: g,
        };
        let base = self.snap_base(line);
        for s in &mut self.snaps[base..base + self.words_per_line] {
            *s = WordSnap::fresh(t, g);
        }
        self.valid_lines += 1;
    }

    /// Records a state transition of an active line: the old window is
    /// closed at `now` and a new one opened, leaving no gap or overlap.
    pub fn set_state(&mut self, line: usize, state: ProtState, now: u64) {
        let t = self.advance_to(now);
        let g = self.gclock;
        let l = &mut self.lines[line];
        debug_assert!(l.active, "set_state on an inactive line");
        if l.state == state {
            return;
        }
        let words = self.words_per_line as u128;
        self.residency[l.state.index()] += words * u128::from(t - l.since);
        self.wresidency[l.state.index()] += self.words_per_line as f64 * (g - l.wsince);
        l.state = state;
        l.since = t;
        l.wsince = g;
    }

    /// Closes a line's residency window: it was evicted or dropped at
    /// `now`. Open word windows die unconsumed — strikes there were
    /// masked. Provisional replica-recovery segments settle as
    /// [`VulnClass::ByReplica`]: the recovery already happened and no
    /// further observation can contradict it.
    pub fn end_line(&mut self, line: usize, now: u64) {
        let t = self.advance_to(now);
        let g = self.gclock;
        let l = &mut self.lines[line];
        debug_assert!(l.active, "end on an inactive line");
        let words = self.words_per_line as u128;
        self.residency[l.state.index()] += words * u128::from(t - l.since);
        self.wresidency[l.state.index()] += self.words_per_line as f64 * (g - l.wsince);
        l.active = false;
        self.valid_lines -= 1;
        let base = self.snap_base(line);
        for idx in base..base + self.words_per_line {
            if let Some((raw, w)) = self.snaps[idx].provisional.take() {
                self.consumed[VulnClass::ByReplica.index()] += u128::from(raw);
                self.wconsumed[VulnClass::ByReplica.index()] += w;
            }
            self.snaps[idx].launder = None;
        }
    }

    /// A word was overwritten or re-encoded from a trusted source at
    /// `now`: its open window closes unconsumed (masked) and a fresh
    /// one opens. A provisional replica-recovery segment settles as
    /// [`VulnClass::ByReplica`] — the overwrite erases the laundered
    /// bits before any re-observation could expose them.
    pub fn refresh_word(&mut self, line: usize, word: usize, now: u64) {
        let t = self.advance_to(now);
        let g = self.gclock;
        let idx = self.snap_base(line) + word;
        if let Some((raw, w)) = self.snaps[idx].provisional.take() {
            self.consumed[VulnClass::ByReplica.index()] += u128::from(raw);
            self.wconsumed[VulnClass::ByReplica.index()] += w;
        }
        self.snaps[idx] = WordSnap::fresh(t, g);
    }

    /// Every word of `line` was rewritten from a trusted source at
    /// `now` (a whole-line refetch): all open word windows close
    /// unconsumed.
    pub fn refresh_line(&mut self, line: usize, now: u64) {
        for word in 0..self.words_per_line {
            self.refresh_word(line, word, now);
        }
    }

    /// A word's integrity check observed it at `now`: the open window
    /// since its last refresh is consumed into `class` — a strike
    /// anywhere inside it would have ended that way — and a fresh
    /// window opens.
    ///
    /// A pending launder boundary splits the window: strikes before
    /// the boundary were trusted into a re-code. An
    /// [`LaunderKind::InPlace`] prefix is wrong data under clean check
    /// bits, so this observation consumes it as
    /// [`VulnClass::Laundered`]. A [`LaunderKind::Copy`] prefix is
    /// still *detected* here (the original kept its stale check bits)
    /// but recovery returns the laundered copy: when this observation
    /// recovers by replica, the machine counts a successful recovery,
    /// and the prefix is held provisionally — settled as
    /// `ByReplica` unless the word is observed again before a refresh
    /// (the second read consumes the wrong data in the open, which is
    /// laundering made visible). A provisional segment from an earlier
    /// observation is settled as `Laundered` by this one.
    pub fn consume_word(&mut self, line: usize, word: usize, class: VulnClass, now: u64) {
        let t = self.advance_to(now);
        let g = self.gclock;
        let idx = self.snap_base(line) + word;
        let snap = &mut self.snaps[idx];
        if let Some((raw, w)) = snap.provisional.take() {
            self.consumed[VulnClass::Laundered.index()] += u128::from(raw);
            self.wconsumed[VulnClass::Laundered.index()] += w;
        }
        match snap.launder.take() {
            Some((lt, lg, kind)) => {
                let pre_raw = lt - snap.cycle;
                let pre_w = (lg - snap.g).max(0.0);
                let post_raw = t - lt;
                let post_w = (g - lg).max(0.0);
                self.consumed[class.index()] += u128::from(post_raw);
                self.wconsumed[class.index()] += post_w;
                match kind {
                    LaunderKind::InPlace => {
                        self.consumed[VulnClass::Laundered.index()] += u128::from(pre_raw);
                        self.wconsumed[VulnClass::Laundered.index()] += pre_w;
                    }
                    LaunderKind::Copy if class == VulnClass::ByReplica => {
                        snap.provisional = Some((pre_raw, pre_w));
                    }
                    LaunderKind::Copy => {
                        // Recovery bypassed the laundered copy (L2
                        // refetch, duplicate, or outright loss): the
                        // prefix shares this observation's fate.
                        self.consumed[class.index()] += u128::from(pre_raw);
                        self.wconsumed[class.index()] += pre_w;
                    }
                }
            }
            None => {
                self.consumed[class.index()] += u128::from(t - snap.cycle);
                self.wconsumed[class.index()] += (g - snap.g).max(0.0);
            }
        }
        snap.cycle = t;
        snap.g = g;
    }

    /// Every word of `line` had its stored bits trusted at `now` (the
    /// seeding of a new replica, or a re-encode under a new code): a
    /// laundering boundary is marked on each open word window. The
    /// boundary is *pending* — nothing is consumed until the word is
    /// next observed (see [`consume_word`](Self::consume_word)); a
    /// window refreshed or evicted before any observation stays masked
    /// exactly as the machine behaves. A later boundary on the same
    /// open window supersedes the earlier one (the re-code trusted the
    /// same stored bits again).
    pub fn launder_line(&mut self, line: usize, now: u64, kind: LaunderKind) {
        let t = self.advance_to(now);
        let g = self.gclock;
        let base = self.snap_base(line);
        for idx in base..base + self.words_per_line {
            self.snaps[idx].launder = Some((t, g, kind));
        }
    }

    /// A snapshot of all windows extended to `now`, without mutating
    /// the ledger: open residency windows are folded in; open word
    /// windows remain unconsumed (masked if the run ended here).
    pub fn windows(&self, now: u64) -> ExposureWindows {
        let t = now.max(self.clock);
        let dt = t - self.clock;
        let mut residency = self.residency;
        let mut wresidency = self.wresidency;
        let mut total_word_cycles = self.total_word_cycles;
        let mut total_weight = self.total_weight;
        let mut gnow = self.gclock;
        if dt > 0 && self.valid_lines > 0 {
            let vwords = (self.valid_lines * self.words_per_line) as f64;
            total_word_cycles += (self.valid_lines * self.words_per_line) as u128 * u128::from(dt);
            let mass = match self.arrival {
                Arrival::Uniform => dt as f64,
                Arrival::Geometric { p } => {
                    let q = 1.0 - p;
                    (self.survival - self.survival * (dt as f64 * q.ln()).exp()).max(0.0)
                }
            };
            total_weight += mass;
            gnow += mass / vwords;
        }
        for l in self.lines.iter().filter(|l| l.active) {
            residency[l.state.index()] += self.words_per_line as u128 * u128::from(t - l.since);
            wresidency[l.state.index()] += self.words_per_line as f64 * (gnow - l.wsince);
        }
        // Provisional replica-recovery segments settle as ByReplica at
        // a run boundary: the recovery was counted and nothing observed
        // the word again. Pending launder boundaries stay masked.
        let mut consumed = self.consumed;
        let mut wconsumed = self.wconsumed;
        for s in &self.snaps {
            if let Some((raw, w)) = s.provisional {
                consumed[VulnClass::ByReplica.index()] += u128::from(raw);
                wconsumed[VulnClass::ByReplica.index()] += w;
            }
        }
        ExposureWindows {
            cycles: t,
            residency,
            weighted_residency: wresidency,
            consumed,
            weighted_consumed: wconsumed,
            total_word_cycles,
            total_weight,
        }
    }
}

/// Accumulated exposure windows at an instant — the vulnerability
/// section of a simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureWindows {
    /// The cycle the snapshot was taken at.
    pub cycles: u64,
    /// Raw residency word-cycles per [`ProtState`] (index by
    /// `ProtState::index`). Sums to `total_word_cycles` exactly.
    pub residency: [u128; NSTATES],
    /// Arrival-weighted residency per state; sums to `total_weight` up
    /// to rounding.
    pub weighted_residency: [f64; NSTATES],
    /// Raw consumed (ACE) word-cycles per [`VulnClass`].
    pub consumed: [u128; NCLASSES],
    /// Arrival-weighted consumed windows per class.
    pub weighted_consumed: [f64; NCLASSES],
    /// Total valid word-cycles, accumulated independently of the
    /// per-state windows (the partition check's right-hand side).
    pub total_word_cycles: u128,
    /// Total arrival weight delivered over non-empty cycles; the
    /// one-shot probabilities' denominator (≈ P(strike delivered)).
    pub total_weight: f64,
}

impl ExposureWindows {
    /// Raw residency word-cycles in `state`.
    pub fn residency_of(&self, state: ProtState) -> u128 {
        self.residency[state.index()]
    }

    /// Raw consumed word-cycles in `class`.
    pub fn consumed_of(&self, class: VulnClass) -> u128 {
        self.consumed[class.index()]
    }

    /// Time-averaged words resident in `state` (e.g. `DirtyParity`
    /// gives the residency-weighted vulnerable-word exposure).
    pub fn avg_words_in(&self, state: ProtState) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.residency[state.index()] as f64 / self.cycles as f64
        }
    }

    /// Probability that a single delivered strike is consumed as
    /// `class`, under the ledger's arrival model.
    pub fn one_shot_probability(&self, class: VulnClass) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            (self.weighted_consumed[class.index()] / self.total_weight).clamp(0.0, 1.0)
        }
    }

    /// Probability that a single delivered strike is never observed by
    /// any check: overwritten, evicted, dropped, or still latent at the
    /// end of the run.
    pub fn one_shot_masked(&self) -> f64 {
        let consumed: f64 = VulnClass::ALL
            .iter()
            .map(|&c| self.one_shot_probability(c))
            .sum();
        (1.0 - consumed).clamp(0.0, 1.0)
    }

    /// Probability that a single delivered strike does *not* end in
    /// data loss or silent corruption — the campaign's survived
    /// fraction, analytically.
    pub fn one_shot_survived(&self) -> f64 {
        (1.0 - self.one_shot_probability(VulnClass::Unrecoverable)
            - self.one_shot_probability(VulnClass::Laundered))
        .clamp(0.0, 1.0)
    }

    /// Folds another window set into this one (for aggregating cells —
    /// e.g. one scheme over all apps).
    pub fn merge(&mut self, other: &ExposureWindows) {
        self.cycles += other.cycles;
        self.total_word_cycles += other.total_word_cycles;
        self.total_weight += other.total_weight;
        for i in 0..NSTATES {
            self.residency[i] += other.residency[i];
            self.weighted_residency[i] += other.weighted_residency[i];
        }
        for i in 0..NCLASSES {
            self.consumed[i] += other.consumed[i];
            self.weighted_consumed[i] += other.weighted_consumed[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_residency(w: &ExposureWindows) -> u128 {
        w.residency.iter().sum()
    }

    #[test]
    fn empty_ledger_has_empty_windows() {
        let l = ExposureLedger::new(4, 8);
        let w = l.windows(1_000);
        assert_eq!(total_residency(&w), 0);
        assert_eq!(w.total_word_cycles, 0);
        assert_eq!(w.one_shot_masked(), 1.0);
        assert_eq!(w.one_shot_survived(), 1.0);
    }

    #[test]
    fn residency_partitions_across_transitions() {
        let mut l = ExposureLedger::new(2, 4);
        l.begin_line(0, ProtState::CleanParity, 10);
        l.set_state(0, ProtState::DirtyParity, 30);
        l.begin_line(1, ProtState::Replica, 50);
        l.set_state(0, ProtState::Replicated, 60);
        l.end_line(1, 80);
        l.set_state(0, ProtState::DirtyParity, 80);
        let w = l.windows(100);
        assert_eq!(w.residency_of(ProtState::CleanParity), 4 * 20);
        assert_eq!(w.residency_of(ProtState::DirtyParity), 4 * (30 + 20));
        assert_eq!(w.residency_of(ProtState::Replicated), 4 * 20);
        assert_eq!(w.residency_of(ProtState::Replica), 4 * 30);
        assert_eq!(total_residency(&w), w.total_word_cycles);
    }

    #[test]
    fn consumption_attributes_whole_interval_to_class_at_check() {
        let mut l = ExposureLedger::new(1, 2);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.set_state(0, ProtState::DirtyParity, 40);
        // Word 1 refreshed at t=60, so its window restarts there.
        l.refresh_word(0, 1, 60);
        // Word 0 read at t=100: the whole window since fill would be
        // seen by a check on a dirty line — unrecoverable.
        l.consume_word(0, 0, VulnClass::Unrecoverable, 100);
        assert_eq!(l.windows(100).consumed_of(VulnClass::Unrecoverable), 100);
        // Word 1 read at t=100: only the 40 cycles since its refresh.
        l.consume_word(0, 1, VulnClass::Unrecoverable, 100);
        assert_eq!(
            l.windows(100).consumed_of(VulnClass::Unrecoverable),
            100 + 40
        );
    }

    #[test]
    fn add_lines_mid_run_leaves_existing_windows_untouched() {
        let mut l = ExposureLedger::new(1, 4);
        l.begin_line(0, ProtState::DirtyParity, 0);
        let before = l.windows(50).residency_of(ProtState::DirtyParity);
        assert_eq!(before, 4 * 50);

        // Lazily attach a 2-slot replica region at t=50.
        let base = l.add_lines(2);
        assert_eq!(base, 1);
        assert_eq!(l.line_count(), 3);
        // New slots are inactive: nothing changes until they begin.
        assert_eq!(l.windows(80).residency_of(ProtState::Replica), 0);

        l.begin_line(base + 1, ProtState::Replica, 80);
        l.end_line(base + 1, 100);
        let w = l.windows(120);
        assert_eq!(w.residency_of(ProtState::DirtyParity), 4 * 120);
        assert_eq!(w.residency_of(ProtState::Replica), 4 * 20);
        assert_eq!(total_residency(&w), w.total_word_cycles);
    }

    #[test]
    fn non_monotone_time_is_clamped_and_windows_stay_nonnegative() {
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::Ecc, 100);
        l.consume_word(0, 0, VulnClass::ByEcc, 50); // in the past
        l.set_state(0, ProtState::CleanParity, 20); // further back
        let w = l.windows(10); // even further
        assert_eq!(w.cycles, 100);
        assert_eq!(total_residency(&w), w.total_word_cycles);
    }

    #[test]
    fn uniform_one_shot_probabilities_follow_exposure_shares() {
        // One line, one word, valid over [0, 100): read at 60 while
        // dirty (unrecoverable window = 60 cycles), then masked to the
        // end. V(t) = 1, so P(unrecoverable) = 60/100.
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::DirtyParity, 0);
        l.consume_word(0, 0, VulnClass::Unrecoverable, 60);
        let w = l.windows(100);
        assert!((w.one_shot_probability(VulnClass::Unrecoverable) - 0.6).abs() < 1e-12);
        assert!((w.one_shot_masked() - 0.4).abs() < 1e-12);
        assert!((w.one_shot_survived() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn geometric_arrival_weights_early_windows_heavier() {
        let p = 0.01;
        let mut early = ExposureLedger::new(1, 1);
        early.set_arrival(Arrival::Geometric { p });
        early.begin_line(0, ProtState::DirtyParity, 0);
        early.consume_word(0, 0, VulnClass::Unrecoverable, 100);
        let we = early.windows(1_000);

        let mut late = ExposureLedger::new(1, 1);
        late.set_arrival(Arrival::Geometric { p });
        late.begin_line(0, ProtState::DirtyParity, 0);
        late.refresh_word(0, 0, 900);
        late.consume_word(0, 0, VulnClass::Unrecoverable, 1_000);
        let wl = late.windows(1_000);

        // Same 100-cycle raw window, but the early one carries far more
        // arrival mass.
        assert_eq!(
            we.consumed_of(VulnClass::Unrecoverable),
            wl.consumed_of(VulnClass::Unrecoverable)
        );
        assert!(
            we.one_shot_probability(VulnClass::Unrecoverable)
                > 3.0 * wl.one_shot_probability(VulnClass::Unrecoverable)
        );
        // And the weighted accounting stays a partition of the weight.
        let sum: f64 = we.weighted_residency.iter().sum();
        assert!((sum - we.total_weight).abs() < 1e-9 * we.total_weight.max(1.0));
    }

    #[test]
    fn in_place_launder_surfaces_at_the_next_observation() {
        let mut l = ExposureLedger::new(1, 4);
        l.begin_line(0, ProtState::Ecc, 0);
        l.refresh_word(0, 2, 30);
        l.launder_line(0, 50, LaunderKind::InPlace);
        // Before any observation the boundary is pending: masked.
        assert_eq!(l.windows(60).consumed_of(VulnClass::Laundered), 0);
        // Observing word 2 splits its window at the boundary: the
        // pre-launder 20 cycles are laundered, the 30 after it take the
        // observation's class.
        l.consume_word(0, 2, VulnClass::ByReplica, 80);
        let w = l.windows(80);
        assert_eq!(w.consumed_of(VulnClass::Laundered), 20);
        assert_eq!(w.consumed_of(VulnClass::ByReplica), 30);
    }

    #[test]
    fn copy_launder_is_provisional_until_a_second_observation() {
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.launder_line(0, 40, LaunderKind::Copy);
        // First observation recovers by replica: the machine counted a
        // successful recovery, so the pre-launder window is reported as
        // ByReplica while nothing has contradicted it...
        l.consume_word(0, 0, VulnClass::ByReplica, 100);
        let w = l.windows(100);
        assert_eq!(w.consumed_of(VulnClass::ByReplica), 100);
        assert_eq!(w.consumed_of(VulnClass::Laundered), 0);
        // ...but a second observation reads the laundered bits in the
        // open: the held 40 cycles become Laundered, and the fresh
        // window [100, 130] takes its own class.
        l.consume_word(0, 0, VulnClass::ByReplica, 130);
        let w = l.windows(130);
        assert_eq!(w.consumed_of(VulnClass::Laundered), 40);
        assert_eq!(w.consumed_of(VulnClass::ByReplica), 60 + 30);
    }

    #[test]
    fn copy_launder_settles_as_replica_on_refresh_or_eviction() {
        // A store overwrites the laundered bits before re-observation.
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.launder_line(0, 40, LaunderKind::Copy);
        l.consume_word(0, 0, VulnClass::ByReplica, 100);
        l.refresh_word(0, 0, 120);
        assert_eq!(l.windows(120).consumed_of(VulnClass::ByReplica), 100);
        assert_eq!(l.windows(120).consumed_of(VulnClass::Laundered), 0);

        // Eviction settles a held segment the same way.
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.launder_line(0, 10, LaunderKind::Copy);
        l.consume_word(0, 0, VulnClass::ByReplica, 30);
        l.end_line(0, 50);
        assert_eq!(l.windows(50).consumed_of(VulnClass::ByReplica), 30);
        assert_eq!(l.windows(50).consumed_of(VulnClass::Laundered), 0);
    }

    #[test]
    fn copy_launder_follows_a_non_replica_recovery() {
        // The replica was gone by observation time: recovery refetched
        // from L2, restoring true data — the whole window shares that
        // fate, laundered copy and all.
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.launder_line(0, 40, LaunderKind::Copy);
        l.consume_word(0, 0, VulnClass::ByRefetch, 100);
        let w = l.windows(100);
        assert_eq!(w.consumed_of(VulnClass::ByRefetch), 100);
        assert_eq!(w.consumed_of(VulnClass::Laundered), 0);
    }

    #[test]
    fn pending_launder_dies_masked_without_observation() {
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.launder_line(0, 40, LaunderKind::InPlace);
        l.refresh_word(0, 0, 60);
        l.end_line(0, 100);
        let w = l.windows(100);
        let consumed: u128 = w.consumed.iter().sum();
        assert_eq!(consumed, 0, "no observation, everything masked");
        assert_eq!(w.total_word_cycles, 100);
    }

    #[test]
    #[should_panic(expected = "before any traffic")]
    fn arrival_cannot_change_mid_run() {
        let mut l = ExposureLedger::new(1, 1);
        l.begin_line(0, ProtState::CleanParity, 0);
        l.end_line(0, 10);
        l.set_arrival(Arrival::Geometric { p: 0.5 });
    }

    #[test]
    fn merge_sums_every_accumulator() {
        let mut a = ExposureLedger::new(1, 2);
        a.begin_line(0, ProtState::Ecc, 0);
        a.consume_word(0, 0, VulnClass::ByEcc, 10);
        let mut wa = a.windows(20);
        let mut b = ExposureLedger::new(1, 2);
        b.begin_line(0, ProtState::DirtyParity, 0);
        let wb = b.windows(30);
        wa.merge(&wb);
        assert_eq!(wa.cycles, 50);
        assert_eq!(wa.residency_of(ProtState::DirtyParity), 60);
        assert_eq!(wa.residency_of(ProtState::Ecc), 40);
        assert_eq!(wa.total_word_cycles, 100);
        assert_eq!(wa.consumed_of(VulnClass::ByEcc), 10);
    }
}
