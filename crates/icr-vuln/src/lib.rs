//! Analytic vulnerability-window accounting for the ICR data cache —
//! a single-pass alternative to Monte-Carlo fault injection.
//!
//! # The model
//!
//! The paper's reliability argument is about *exposure time*: how long
//! each cache word sits in a given protection state determines whether a
//! transient single-bit strike there is recoverable. The Monte-Carlo
//! campaign engine (`icr-sim::campaign`) measures this by running
//! hundreds of full simulations per (scheme × app) cell, one injected
//! fault each. This crate computes the same outcome distribution from
//! **one** fault-free simulation, by doing ACE/AVF-style lifetime
//! analysis inline while the cache runs:
//!
//! 1. **Residency windows.** Every valid line is, at each instant, in
//!    exactly one [`ProtState`]: `Replicated` (parity primary with a live
//!    replica), `CleanParity` / `DirtyParity` (unreplicated parity),
//!    `Ecc` (unreplicated SEC-DED), or `Replica` (a replica line
//!    itself). The [`ExposureLedger`] accumulates word-cycles of
//!    residency per state; the per-state windows *partition* total valid
//!    residency exactly (enforced by property tests).
//!
//! 2. **Consumed (ACE) windows.** A strike only matters if the struck
//!    word's check ever *observes* it. A load of word `w` consumes the
//!    interval since `w` was last written, filled or checked; the
//!    interval is attributed to a [`VulnClass`] — the recovery outcome a
//!    single-bit strike anywhere in that interval would have had,
//!    decided by the line's state **at consumption time** (replica
//!    available ⇒ `ByReplica`; SEC-DED ⇒ `ByEcc`; clean ⇒ `ByRefetch`;
//!    dirty unreplicated parity ⇒ `Unrecoverable`). Stores, fills,
//!    evictions and scrub heals *refresh* a word without consuming:
//!    strikes in those windows are masked. Special case — *laundering*:
//!    when a block gains its first replica or its primary is re-encoded
//!    under a new code, the stored bits are trusted, so a latent strike
//!    survives into a clean codeword. The ledger marks a pending
//!    [`LaunderKind`] boundary and resolves it at the next observation,
//!    mirroring the machine: an **in-place** re-encode seals the strike
//!    under clean check bits, so the next load consumes the laundered
//!    prefix as [`VulnClass::Laundered`]; a **copy** into a fresh
//!    replica leaves the primary's stale check bits intact, so the next
//!    load still detects the strike, "recovers" the laundered copy and
//!    is counted `ByReplica` — only a *second* observation before any
//!    refresh exposes the wrong data (the oracle's
//!    `SilentCorruption`), upgrading the held segment to `Laundered`.
//!    Boundaries never observed stay masked.
//!
//! 3. **Arrival weighting.** The Monte-Carlo injector delivers one fault
//!    at a geometrically-distributed arrival time (per-cycle Bernoulli,
//!    probability `p`), striking a word chosen uniformly among the words
//!    valid *at that instant*. To predict its outcome distribution the
//!    ledger also integrates every window against that arrival density:
//!    a word-interval `[a, b)` carries weight `∫ f(t)/V(t) dt`, with
//!    `f(t) = p(1-p)^t` (deferred while the cache is empty, as the
//!    injector retries) and `V(t)` the number of valid words. With
//!    [`Arrival::Uniform`] (the default) `f ≡ 1`: the strike lands at a
//!    uniformly random instant instead. `P(class c | injected)` is then
//!    `weighted_consumed[c] / total_weight`, and the remainder is the
//!    masked fraction.
//!
//! 4. **Rate summaries.** Under a uniform raw flip rate (a Poisson
//!    process per bit-cycle) expected outcome counts are proportional to
//!    the *raw* consumed word-cycles; [`VulnModel`] turns the
//!    unrecoverable + laundered share into failures-in-time (FIT) and
//!    MTTF summaries.
//!
//! # Known approximations
//!
//! * Outcomes are attributed at consumption time. A strike that lands
//!   while a line is clean but is read after the line turns dirty is
//!   correctly charged as unrecoverable; the rare converse paths
//!   (e.g. a corrupt word copied into a *new* replica and only read
//!   once) can differ from a Monte-Carlo trial's label by one class.
//! * The PP schemes' primary/replica comparison catches parity-blind
//!   multi-bit patterns; under this crate's single-bit model every
//!   strike trips a parity or SEC-DED check first, so no window maps to
//!   `CaughtByCompare` — replica reads consumed by the parallel compare
//!   resolve to `ByRefetch` (clean) or `Unrecoverable` (dirty) instead.
//! * A Kim–Somani duplication cache changes consumption classes (probed
//!   during recovery) but not residency states.
//!
//! Cross-validation against the campaign engine (analytic probabilities
//! inside the campaign's Wilson 95% intervals) lives in
//! `icr-sim/tests/vuln_validation.rs`.
//!
//! This crate is dependency-free; `icr-core` drives the ledger from the
//! dL1's fill/store/replicate/evict/scrub transitions and `icr-sim`
//! reports the profiles.

pub mod ledger;
pub mod model;
pub mod proposal;

pub use ledger::{Arrival, ExposureLedger, ExposureWindows, LaunderKind, ProtState, VulnClass};
pub use model::VulnModel;
pub use proposal::InjectionProposal;
