//! Property tests for the protection-state lifetime machine: on every
//! generated event trace the per-state residency windows are
//! non-negative and partition total valid residency *exactly* —
//! including across transitions, evictions and out-of-order timestamps
//! — and the weighted accounting conserves arrival mass.

use icr_vuln::{Arrival, ExposureLedger, LaunderKind, ProtState, VulnClass};
use proptest::prelude::*;

const LINES: usize = 6;
const WORDS: usize = 4;

/// One randomly drawn ledger event. The opcode decides the variant;
/// the remaining fields parameterize it (unused ones are ignored), and
/// `dt` advances a free-running external clock that is deliberately
/// jittered to exercise the monotonicity clamp.
type Op = (u8, usize, usize, u8, u8, u64);

fn state_of(sel: u8) -> ProtState {
    ProtState::ALL[sel as usize % ProtState::ALL.len()]
}

fn class_of(sel: u8) -> VulnClass {
    VulnClass::ALL[sel as usize % VulnClass::ALL.len()]
}

/// Replays a trace against a ledger, mirroring validity in a local
/// model so begin/end pair up the way a real cache's fills and
/// evictions do. Returns the final clock value.
fn replay(ledger: &mut ExposureLedger, ops: &[Op]) -> u64 {
    let mut active = [false; LINES];
    let mut now: u64 = 0;
    for &(op, line, word, state_sel, class_sel, dt) in ops {
        now += dt;
        // Jitter: every third event is reported 7 cycles in the past,
        // as an out-of-order pipeline would.
        let reported = if op % 3 == 0 {
            now.saturating_sub(7)
        } else {
            now
        };
        let line = line % LINES;
        let word = word % WORDS;
        match op % 6 {
            0 => {
                if !active[line] {
                    ledger.begin_line(line, state_of(state_sel), reported);
                    active[line] = true;
                }
            }
            1 => {
                if active[line] {
                    ledger.set_state(line, state_of(state_sel), reported);
                }
            }
            2 => {
                if active[line] {
                    ledger.end_line(line, reported);
                    active[line] = false;
                }
            }
            3 => {
                if active[line] {
                    ledger.refresh_word(line, word, reported);
                }
            }
            4 => {
                if active[line] {
                    ledger.consume_word(line, word, class_of(class_sel), reported);
                }
            }
            _ => {
                if active[line] {
                    let kind = if state_sel % 2 == 0 {
                        LaunderKind::Copy
                    } else {
                        LaunderKind::InPlace
                    };
                    ledger.launder_line(line, reported, kind);
                }
            }
        }
    }
    now
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..6,
            0usize..LINES,
            0usize..WORDS,
            0u8..5,
            0u8..5,
            0u64..40,
        ),
        0..250,
    )
}

proptest! {
    /// Raw per-state windows partition total valid residency exactly:
    /// no gaps, no overlaps, across every transition/eviction edge.
    #[test]
    fn residency_partitions_exactly(ops in ops_strategy(), tail in 0u64..200) {
        let mut ledger = ExposureLedger::new(LINES, WORDS);
        let end = replay(&mut ledger, &ops) + tail;
        let w = ledger.windows(end);
        let total: u128 = w.residency.iter().sum();
        prop_assert_eq!(total, w.total_word_cycles);
    }

    /// Consumed windows never exceed what was resident, and every
    /// accumulator stays non-negative.
    #[test]
    fn consumed_windows_are_bounded_and_nonnegative(ops in ops_strategy()) {
        let mut ledger = ExposureLedger::new(LINES, WORDS);
        let end = replay(&mut ledger, &ops);
        let w = ledger.windows(end);
        let consumed: u128 = w.consumed.iter().sum();
        prop_assert!(consumed <= w.total_word_cycles);
        for &x in &w.weighted_residency {
            prop_assert!(x >= 0.0);
        }
        for &x in &w.weighted_consumed {
            prop_assert!(x >= 0.0);
        }
        let mut probs = 0.0;
        for &c in &VulnClass::ALL {
            let p = w.one_shot_probability(c);
            prop_assert!((0.0..=1.0).contains(&p));
            probs += p;
        }
        prop_assert!(probs <= 1.0 + 1e-9);
    }

    /// Weighted residency conserves the delivered arrival mass, under
    /// both the uniform and the geometric arrival model.
    #[test]
    fn weighted_residency_conserves_arrival_mass(
        ops in ops_strategy(),
        geometric in 0u8..2,
        psel in 0usize..3,
    ) {
        let mut ledger = ExposureLedger::new(LINES, WORDS);
        if geometric == 1 {
            let p = [1e-2, 1e-4, 0.3][psel];
            ledger.set_arrival(Arrival::Geometric { p });
        }
        let end = replay(&mut ledger, &ops);
        let w = ledger.windows(end);
        let sum: f64 = w.weighted_residency.iter().sum();
        let scale = w.total_weight.max(1.0);
        prop_assert!((sum - w.total_weight).abs() <= 1e-9 * scale);
        prop_assert!(w.total_weight >= 0.0);
        if geometric == 1 {
            // A geometric arrival delivers at most unit mass in total.
            prop_assert!(w.total_weight <= 1.0 + 1e-12);
        }
    }

    /// The instantaneous words_in snapshot agrees with a hand-tracked
    /// model of which lines are valid.
    #[test]
    fn words_in_matches_validity_model(ops in ops_strategy()) {
        let mut ledger = ExposureLedger::new(LINES, WORDS);
        replay(&mut ledger, &ops);
        let total: usize = ProtState::ALL.iter().map(|&s| ledger.words_in(s)).sum();
        prop_assert_eq!(total, ledger.valid_line_count() * WORDS);
    }
}
