//! SplitMix64 per-trial seed derivation for Monte-Carlo campaigns.
//!
//! A campaign wants N *independent* trials whose RNG streams are fully
//! determined by one master seed and the trial's index — never by which
//! worker thread ran the trial or in what order. SplitMix64 gives exactly
//! that: the `i`-th output of the stream seeded with `master` is
//! `mix64(master + (i + 1) · γ)`, a pure function of `(master, i)` with
//! good avalanche behaviour, so adjacent indices yield statistically
//! unrelated seeds. The same construction (and constants) back the
//! workload generator's internal `icr_splitmix`.

/// Weyl-sequence increment γ used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64's 64-bit finalizer (Stafford's Mix13 variant).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for trial `trial_index` of the campaign with `master_seed`.
///
/// Bit-identical for a given `(master_seed, trial_index)` pair on every
/// platform, thread count and execution order — the foundation of the
/// campaign engine's reproducibility guarantee.
#[inline]
pub fn trial_seed(master_seed: u64, trial_index: u64) -> u64 {
    mix64(master_seed.wrapping_add(trial_index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_master_and_index() {
        assert_eq!(trial_seed(42, 7), trial_seed(42, 7));
        assert_ne!(trial_seed(42, 7), trial_seed(42, 8));
        assert_ne!(trial_seed(42, 7), trial_seed(43, 7));
    }

    #[test]
    fn no_collisions_in_a_large_campaign() {
        let mut seen: Vec<u64> = (0..100_000).map(|i| trial_seed(42, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100_000, "trial seeds collided");
    }

    #[test]
    fn adjacent_indices_decorrelate() {
        // Avalanche sanity: consecutive trial seeds should differ in
        // roughly half their bits on average.
        let mut total = 0u32;
        const N: u64 = 1_000;
        for i in 0..N {
            total += (trial_seed(1, i) ^ trial_seed(1, i + 1)).count_ones();
        }
        let avg = total as f64 / N as f64;
        assert!((24.0..40.0).contains(&avg), "avg bit flips {avg}");
    }
}
