//! The four transient-error models of Kim & Somani that the paper
//! evaluates (§5.5).

/// How one fault event manifests in the SRAM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorModel {
    /// One particle strike flips a single data bit of a random word.
    Direct,
    /// One strike upsets two *adjacent* data bits of the same word —
    /// exactly the multi-bit pattern byte-parity can miss and SEC-DED can
    /// only detect.
    Adjacent,
    /// A column disturbance flips the same bit position in two adjacent
    /// words of a line.
    Column,
    /// A strike anywhere in the array: a single random bit of a random
    /// word, including the check-bit storage. This is the model the
    /// paper's Figure 14 reports.
    Random,
}

impl ErrorModel {
    /// All four models, in the paper's order.
    pub fn all() -> [ErrorModel; 4] {
        [
            ErrorModel::Direct,
            ErrorModel::Adjacent,
            ErrorModel::Column,
            ErrorModel::Random,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorModel::Direct => "direct",
            ErrorModel::Adjacent => "adjacent",
            ErrorModel::Column => "column",
            ErrorModel::Random => "random",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_models_with_unique_names() {
        let names: std::collections::HashSet<_> =
            ErrorModel::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
