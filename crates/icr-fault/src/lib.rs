//! Transient-fault injection for the ICR reproduction (§5.5 / Figure 14).
//!
//! The paper injects errors "at each clock cycle based on a constant
//! probability", using the four models of Kim & Somani: *direct*,
//! *adjacent*, *column* and *random*. Faults here flip real stored bits in
//! the dL1 (data or check bits) and, for spill schemes, in the L2 replica
//! region; whether they are later detected, corrected, healed from a
//! replica, refetched from L2 or lost is decided by the cache's own
//! integrity machinery, not by the injector.

pub mod injector;
pub mod model;
pub mod seed;

pub use injector::{conditional_arrival, FaultInjector, FaultSite, InjectedFault, SiteMismatch};
pub use model::ErrorModel;
pub use seed::trial_seed;
