//! The injector: per-cycle Bernoulli fault arrivals applied to the dL1
//! and, for spill schemes, to the replica-aware L2 region.

use crate::model::ErrorModel;
use icr_core::DataL1;
use icr_mem::MemoryBackend;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Draws a fault-arrival cycle from the exact conditional distribution
/// of a per-cycle Bernoulli(`p`) arrival, given that it lands within
/// `horizon` cycles: a geometric variate truncated to `1..=horizon`,
/// by inverse-CDF. Deterministic in `seed`.
///
/// This is the "forced injection" half of an importance-sampled trial:
/// the unconditioned arrival delivers no fault at all with probability
/// `(1-p)^horizon` — wasted work the estimator (which conditions on
/// delivery) never sees. Sampling the arrival from the conditional
/// directly makes every trial deliver, and because the draw *is* the
/// conditional distribution, its likelihood ratio is exactly 1 — the
/// trial weight stays the site draw's ratio alone.
///
/// # Panics
///
/// Panics unless `p` is in `(0, 1]` and `horizon >= 1`.
pub fn conditional_arrival(p: f64, horizon: u64, seed: u64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "arrival probability {p} not in (0,1]");
    assert!(horizon >= 1, "arrival horizon must be at least one cycle");
    let u: f64 = SmallRng::seed_from_u64(seed).gen();
    if p >= 1.0 {
        return 1;
    }
    let q = 1.0 - p;
    // F(t) = (1 - q^t) / (1 - q^horizon); smallest t with F(t) >= u.
    let tail = 1.0 - q.powf(horizon as f64);
    let t = ((1.0 - u * tail).ln() / q.ln()).ceil() as u64;
    t.clamp(1, horizon)
}

/// Where an injected fault landed: a dL1 line, or a spilled replica in
/// the L2 region. The sample space is the union of both, weighted by
/// occupancy, so spilled copies face the same per-bit strike rate as
/// dL1-resident data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A valid dL1 line.
    DataL1 {
        /// Set index of the struck line.
        set: usize,
        /// Way of the struck line.
        way: usize,
    },
    /// An occupied slot of the L2 replica region.
    L2Replica {
        /// Region slot of the struck copy.
        slot: usize,
    },
}

impl FaultSite {
    /// The dL1 coordinates of this site, or a recoverable
    /// [`SiteMismatch`] when the strike landed in the L2 replica region.
    ///
    /// Consumers that only track dL1 state (trace analyzers, the test
    /// helpers, dL1-only tooling) must not assume every fault is a dL1
    /// fault: under spill schemes the sample space includes the region,
    /// and treating that as unreachable turns a routine site into an
    /// abort.
    pub fn as_dl1(self) -> Result<(usize, usize), SiteMismatch> {
        match self {
            FaultSite::DataL1 { set, way } => Ok((set, way)),
            FaultSite::L2Replica { .. } => Err(SiteMismatch {
                got: self,
                expected: "a dL1 line",
            }),
        }
    }

    /// The L2 replica-region slot of this site, or a recoverable
    /// [`SiteMismatch`] for a dL1 strike.
    pub fn as_region_slot(self) -> Result<usize, SiteMismatch> {
        match self {
            FaultSite::L2Replica { slot } => Ok(slot),
            FaultSite::DataL1 { .. } => Err(SiteMismatch {
                got: self,
                expected: "an L2 replica-region slot",
            }),
        }
    }
}

/// A consumer expected a fault in one storage tier but the injected
/// site lies in the other. Recoverable: callers decide whether to skip,
/// reroute, or report the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMismatch {
    /// The site that was actually struck.
    pub got: FaultSite,
    /// What the consumer asked for.
    pub expected: &'static str,
}

impl std::fmt::Display for SiteMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected {}, got fault site {:?}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for SiteMismatch {}

/// Record of one injected fault (for logging and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Cycle at which the fault struck.
    pub cycle: u64,
    /// The struck storage location.
    pub site: FaultSite,
    /// Word within the line.
    pub word: usize,
    /// First (or only) flipped bit.
    pub bit: u32,
    /// `true` when the flip landed in the check-bit storage.
    pub in_check_bits: bool,
    /// Whether the struck dL1 line was dirty at injection (always
    /// `false` for L2 replica-region slots).
    pub site_dirty: bool,
    /// Cycles since the struck dL1 line's last access at injection
    /// (`0` for L2 replica-region slots).
    pub site_idle_cycles: u64,
    /// Aligned block address the struck site held at injection.
    pub site_block: u64,
}

/// Injects transient faults into a [`DataL1`] at a constant per-cycle
/// probability, following one of the four [`ErrorModel`]s.
///
/// ```
/// use icr_core::{DataL1, DataL1Config, Scheme};
/// use icr_fault::{ErrorModel, FaultInjector};
/// use icr_mem::{Addr, HierarchyConfig, MemoryBackend};
///
/// let mut backend = MemoryBackend::new(&HierarchyConfig::default());
/// let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
/// dl1.load(Addr(0x1000_0000), 0, &mut backend);
///
/// // Probability 1: one fault per cycle, guaranteed.
/// let mut inj = FaultInjector::new(ErrorModel::Random, 1.0, 42);
/// let n = inj.advance(&mut dl1, &mut backend, 0, 10);
/// assert_eq!(n, 10);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: ErrorModel,
    p_per_cycle: f64,
    rng: SmallRng,
    injected: u64,
    max_faults: Option<u64>,
    log: Vec<InjectedFault>,
    keep_log: bool,
    site_bias: Option<f64>,
    hot_blocks: Option<Arc<HashSet<u64>>>,
    forced_arrival: Option<u64>,
    last_weight: f64,
    pending_site_state: (bool, u64, u64),
}

impl FaultInjector {
    /// An injector using `model` with per-cycle fault probability
    /// `p_per_cycle`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics unless `p_per_cycle` is in `[0, 1]`.
    pub fn new(model: ErrorModel, p_per_cycle: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_per_cycle),
            "probability must be in [0,1], got {p_per_cycle}"
        );
        FaultInjector {
            model,
            p_per_cycle,
            rng: SmallRng::seed_from_u64(seed),
            injected: 0,
            max_faults: None,
            log: Vec::new(),
            keep_log: false,
            site_bias: None,
            hot_blocks: None,
            forced_arrival: None,
            last_weight: 1.0,
            pending_site_state: (false, 0, 0),
        }
    }

    /// Switches the site draw to an importance-sampling proposal:
    /// valid dL1 lines that are loss-prone
    /// ([`DataL1::line_loss_prone`]: dirty parity-protected primaries,
    /// the only residency a single-bit strike can turn into data loss)
    /// are drawn `boost`× as often as every other site. The fault
    /// *arrival* process (the per-cycle Bernoulli draw and its RNG
    /// stream) is untouched, so only the conditional site distribution
    /// changes; [`last_weight`](Self::last_weight) then carries the
    /// exact likelihood ratio `P_uniform(site) / P_proposal(site)`
    /// that makes weighted outcome tallies unbiased.
    ///
    /// Without this option the draw and its RNG consumption are
    /// byte-identical to the historical uniform injector.
    ///
    /// # Panics
    ///
    /// Panics unless `boost` is finite and positive.
    pub fn with_site_bias(mut self, boost: f64) -> Self {
        assert!(
            boost.is_finite() && boost > 0.0,
            "site bias must be finite and positive, got {boost}"
        );
        self.site_bias = Some(boost);
        self
    }

    /// Widens the biased site draw's boosted class beyond loss-prone
    /// lines to any valid non-replica parity line whose block is in
    /// `blocks` — typically the profiled store working set, the only
    /// blocks a strike can *launder* through (a clean-line strike turns
    /// silent only when a later store dirties the line and replication
    /// re-encodes the corrupted word under clean parity). No effect
    /// without [`with_site_bias`](Self::with_site_bias); weights stay
    /// exact likelihood ratios either way.
    pub fn with_hot_blocks(mut self, blocks: Arc<HashSet<u64>>) -> Self {
        self.hot_blocks = Some(blocks);
        self
    }

    /// Forces the single fault arrival to the given cycle: `advance`
    /// stops drawing per-cycle Bernoulli arrivals (consuming no RNG for
    /// them) and injects exactly once, in whichever window covers
    /// `cycle`. Pair with [`conditional_arrival`] to sample `cycle`
    /// from the arrival process's exact conditional-on-delivery
    /// distribution: the trial then measures the same conditional
    /// estimand as a Bernoulli trial that happened to deliver, without
    /// the `(1-p)^C` chance of a wasted, fault-free run. The site,
    /// word, and bit draws still come from the seeded stream.
    pub fn with_forced_arrival(mut self, cycle: u64) -> Self {
        self.forced_arrival = Some(cycle);
        self
    }

    /// The importance weight (likelihood ratio) of the most recently
    /// injected fault: `1.0` in uniform mode, before any injection, and
    /// whenever the proposal coincides with the uniform draw (no
    /// loss-prone lines resident at strike time).
    pub fn last_weight(&self) -> f64 {
        self.last_weight
    }

    /// Caps the total number of faults this injector will ever deliver.
    /// `with_max_faults(1)` is the single-event-upset mode Monte-Carlo
    /// campaigns use: the first Bernoulli arrival strikes, then the
    /// injector goes quiet, so every counted outcome is attributable to
    /// exactly one fault.
    pub fn with_max_faults(mut self, max: u64) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Enables recording of every injected fault (off by default to keep
    /// long runs cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// The error model in use.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The fault log (empty unless [`with_log`](Self::with_log)).
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Advances simulated time from `from_cycle` (exclusive) to `to_cycle`
    /// (inclusive), flipping bits per the per-cycle probability. Returns
    /// the number of faults injected.
    pub fn advance(
        &mut self,
        dl1: &mut DataL1,
        backend: &mut MemoryBackend,
        from_cycle: u64,
        to_cycle: u64,
    ) -> u64 {
        if self.p_per_cycle == 0.0 || to_cycle <= from_cycle || self.quiesced() {
            return 0;
        }
        if let Some(a) = self.forced_arrival {
            // Bernoulli arrivals in this window would land in
            // (from_cycle, to_cycle]; the forced arrival obeys the same
            // convention and consumes no arrival RNG.
            if a > from_cycle && a <= to_cycle && self.inject_one(dl1, backend, a) {
                return 1;
            }
            return 0;
        }
        let mut n = 0;
        for cycle in from_cycle..to_cycle {
            if self.rng.gen::<f64>() < self.p_per_cycle && self.inject_one(dl1, backend, cycle + 1)
            {
                n += 1;
                if self.quiesced() {
                    break;
                }
            }
        }
        n
    }

    /// `true` once the [`with_max_faults`](Self::with_max_faults) budget
    /// is exhausted.
    pub fn quiesced(&self) -> bool {
        self.max_faults.is_some_and(|m| self.injected >= m)
    }

    /// Injects exactly one fault event right now (used by tests and by
    /// deterministic experiments), striking uniformly across dL1 lines
    /// and occupied L2 replica-region slots. Returns `false` when
    /// neither holds anything to strike.
    ///
    /// When the region is empty — every scheme whose placement tier is
    /// dL1-only — the draw collapses to the pure dL1 sample space, so
    /// established seeds reproduce the same fault sites they always did.
    pub fn inject_one(
        &mut self,
        dl1: &mut DataL1,
        backend: &mut MemoryBackend,
        cycle: u64,
    ) -> bool {
        let lines = dl1.valid_lines();
        let slots = backend.replica_region().occupied();
        let total = lines.len() + slots.len();
        if total == 0 {
            return false;
        }
        let (idx, weight) = match self.site_bias {
            None => (self.rng.gen_range(0..total), 1.0),
            Some(boost) => self.biased_site(dl1, &lines, slots.len(), boost),
        };
        self.last_weight = weight;
        let (site, words, site_dirty, site_idle, site_block) = if idx < lines.len() {
            let (set, way) = lines[idx];
            let view = dl1.line_view(set, way);
            (
                FaultSite::DataL1 { set, way },
                dl1.geometry().words_per_block(),
                view.as_ref().is_some_and(|v| v.dirty),
                cycle.saturating_sub(dl1.line_last_access(set, way)),
                view.map(|v| v.addr.raw()).unwrap_or(0),
            )
        } else {
            let (slot, block) = slots[idx - lines.len()];
            (
                FaultSite::L2Replica { slot },
                backend.replica_region().words(slot).len(),
                false,
                0,
                block.raw(),
            )
        };
        self.pending_site_state = (site_dirty, site_idle, site_block);
        let word = self.rng.gen_range(0..words);
        match self.model {
            ErrorModel::Direct => {
                let bit = self.rng.gen_range(0..64);
                flip_data(dl1, backend, site, word, bit);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Adjacent => {
                let bit = self.rng.gen_range(0..63);
                flip_data(dl1, backend, site, word, bit);
                flip_data(dl1, backend, site, word, bit + 1);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Column => {
                let bit = self.rng.gen_range(0..64);
                let next_word = (word + 1) % words;
                flip_data(dl1, backend, site, word, bit);
                flip_data(dl1, backend, site, next_word, bit);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Random => {
                // 64 data bits + 8 check bits per word: strike uniformly.
                let bit = self.rng.gen_range(0..72);
                if bit < 64 {
                    flip_data(dl1, backend, site, word, bit);
                    self.record(cycle, site, word, bit, false);
                } else {
                    flip_check(dl1, backend, site, word, bit - 64);
                    self.record(cycle, site, word, bit - 64, true);
                }
            }
        }
        self.injected += 1;
        true
    }

    /// Draws one site index from the importance proposal: loss-prone
    /// lines ([`DataL1::line_loss_prone`] — dirty parity-protected
    /// primaries, replicated or not) and, when
    /// [`with_hot_blocks`](Self::with_hot_blocks) is set, parity
    /// primaries holding a hot (store-working-set) block carry weight
    /// `boost`; every other dL1 line and every occupied region slot
    /// weight `1`. Returns the index into the `lines ++ slots` sample
    /// space and the exact likelihood ratio
    /// `P_uniform(site) / P_proposal(site)` of the drawn site.
    ///
    /// The word within the site is drawn uniformly either way, so its
    /// factor cancels from the ratio, which reduces to
    /// `Σw / (total · w_site)`. When no loss-prone line is resident
    /// the proposal *is* the uniform distribution and the ratio is
    /// exactly `1`.
    fn biased_site(
        &mut self,
        dl1: &DataL1,
        lines: &[(usize, usize)],
        slot_count: usize,
        boost: f64,
    ) -> (usize, f64) {
        let total = lines.len() + slot_count;
        let hot = self.hot_blocks.as_deref();
        let line_weight = |&(set, way): &(usize, usize)| -> f64 {
            let boosted = dl1.line_loss_prone(set, way)
                || hot.is_some_and(|h| dl1.line_in_working_set(set, way, h));
            if boosted {
                boost
            } else {
                1.0
            }
        };
        let total_weight: f64 = lines.iter().map(line_weight).sum::<f64>() + slot_count as f64;
        let r = self.rng.gen::<f64>() * total_weight;
        let mut acc = 0.0;
        let mut chosen = None;
        for i in 0..total {
            let w = if i < lines.len() {
                line_weight(&lines[i])
            } else {
                1.0
            };
            acc += w;
            if r < acc {
                chosen = Some((i, w));
                break;
            }
        }
        // Floating-point fallthrough (r landed on the accumulated sum's
        // rounding slack): charge the last site.
        let (idx, site_weight) = chosen.unwrap_or_else(|| {
            let i = total - 1;
            let w = if i < lines.len() {
                line_weight(&lines[i])
            } else {
                1.0
            };
            (i, w)
        });
        (idx, total_weight / (total as f64 * site_weight))
    }

    fn record(&mut self, cycle: u64, site: FaultSite, word: usize, bit: u32, chk: bool) {
        if self.keep_log {
            let (site_dirty, site_idle_cycles, site_block) = self.pending_site_state;
            self.log.push(InjectedFault {
                cycle,
                site,
                word,
                bit,
                in_check_bits: chk,
                site_dirty,
                site_idle_cycles,
                site_block,
            });
        }
    }
}

fn flip_data(
    dl1: &mut DataL1,
    backend: &mut MemoryBackend,
    site: FaultSite,
    word: usize,
    bit: u32,
) {
    let flipped = match site {
        FaultSite::DataL1 { set, way } => dl1.flip_data_bit(set, way, word, bit),
        FaultSite::L2Replica { slot } => {
            backend.replica_region_mut().flip_data_bit(slot, word, bit)
        }
    };
    debug_assert!(flipped, "fault site {site:?} vanished mid-injection");
}

fn flip_check(
    dl1: &mut DataL1,
    backend: &mut MemoryBackend,
    site: FaultSite,
    word: usize,
    bit: u32,
) {
    let flipped = match site {
        FaultSite::DataL1 { set, way } => dl1.flip_check_bit(set, way, word, bit),
        FaultSite::L2Replica { slot } => {
            backend.replica_region_mut().flip_check_bit(slot, word, bit)
        }
    };
    debug_assert!(flipped, "fault site {site:?} vanished mid-injection");
}

#[cfg(test)]
mod tests {
    use super::*;
    use icr_core::{DataL1Config, Scheme};
    use icr_mem::{Addr, HierarchyConfig, MemoryBackend};

    fn loaded_cache() -> (DataL1, MemoryBackend) {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
        for i in 0..16u64 {
            dl1.load(Addr(0x1000_0000 + i * 64), i, &mut backend);
        }
        (dl1, backend)
    }

    /// The dL1 coordinates of a logged fault. Site mismatches are a
    /// recoverable [`SiteMismatch`] now; these tests genuinely require
    /// a dL1 strike, so they surface the error as a test failure.
    fn dl1_site(f: &InjectedFault) -> (usize, usize) {
        f.site.as_dl1().expect("test requires a dL1 fault")
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Random, 0.0, 1);
        assert_eq!(inj.advance(&mut dl1, &mut backend, 0, 100_000), 0);
    }

    #[test]
    fn empty_cache_cannot_be_struck() {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
        let mut inj = FaultInjector::new(ErrorModel::Random, 1.0, 1);
        assert_eq!(inj.advance(&mut dl1, &mut backend, 0, 10), 0);
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 0.1, 7);
        let n = inj.advance(&mut dl1, &mut backend, 0, 10_000);
        assert!((800..1200).contains(&n), "expected ~1000, got {n}");
    }

    #[test]
    fn direct_fault_is_detectable_by_parity() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 3).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        // Reload every resident word of that line via the public API: the
        // parity machinery must detect (and, clean line, recover from L2).
        let view = dl1.line_view(set, way).unwrap();
        let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
        dl1.load(addr, 1, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
    }

    #[test]
    fn adjacent_fault_defeats_parity_detection() {
        // Two adjacent bits in one byte alias for byte parity: the load
        // sees clean parity and silently consumes wrong data. This is the
        // failure mode the paper's ECC/NMR discussion worries about.
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Adjacent, 1.0, 5).with_log();
        // Find an injection whose two bits fall in the same byte.
        loop {
            inj.log.clear();
            assert!(inj.inject_one(&mut dl1, &mut backend, 0));
            let f = inj.log()[0];
            if f.bit % 8 != 7 {
                // bits f.bit and f.bit+1 share a byte
                let (set, way) = dl1_site(&f);
                let view = dl1.line_view(set, way).unwrap();
                let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
                let before = dl1.stats().errors_detected;
                dl1.load(addr, 1, &mut backend);
                assert_eq!(
                    dl1.stats().errors_detected,
                    before,
                    "same-byte adjacent flips must slip past parity"
                );
                break;
            }
            // Bits straddle a byte boundary: re-roll on a fresh cache.
            let (d, _) = loaded_cache();
            dl1 = d;
        }
    }

    #[test]
    fn adjacent_fault_is_detected_by_secded() {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_ECC));
        dl1.load(Addr(0x1000_0000), 0, &mut backend);
        let mut inj = FaultInjector::new(ErrorModel::Adjacent, 1.0, 5).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        let view = dl1.line_view(set, way).unwrap();
        let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
        dl1.load(addr, 1, &mut backend);
        // SEC-DED flags the double error; the clean line refetches from L2.
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
        assert_eq!(dl1.stats().errors_corrected_ecc, 0);
    }

    #[test]
    fn column_fault_hits_two_words() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Column, 1.0, 9).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        let view = dl1.line_view(set, way).unwrap();
        let words = dl1.geometry().words_per_block();
        let w2 = (f.word + 1) % words;
        // Both struck words differ from the architecturally-correct data.
        let golden = backend.golden_block(view.addr);
        assert_ne!(dl1.word_data(set, way, f.word), Some(golden.word(f.word)));
        assert_ne!(dl1.word_data(set, way, w2), Some(golden.word(w2)));
        // The first load detects its word's error; the clean-line refetch
        // from L2 heals the *entire* line, including the second word.
        dl1.load(Addr(view.addr.raw() + (f.word as u64) * 8), 1, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
        assert_eq!(dl1.word_data(set, way, w2), Some(golden.word(w2)));
        dl1.load(Addr(view.addr.raw() + (w2 as u64) * 8), 2, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1, "second word already healed");
    }

    #[test]
    fn determinism_same_seed_same_fault_sites() {
        let (mut a, mut backend_a) = loaded_cache();
        let (mut b, mut backend_b) = loaded_cache();
        let mut ia = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        let mut ib = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        ia.advance(&mut a, &mut backend_a, 0, 50);
        ib.advance(&mut b, &mut backend_b, 0, 50);
        assert_eq!(ia.log(), ib.log());
    }

    #[test]
    fn spilled_replicas_share_the_strike_space() {
        // An empty dL1 plus one region-resident copy: every strike must
        // land in the region, and the flip must corrupt the stored word.
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::ICR_P_PS_S_L2));
        let block = icr_mem::BlockAddr(0x1000_0000);
        let words: Vec<_> = backend
            .golden_block(block)
            .words()
            .iter()
            .map(|&w| icr_ecc::ProtectedWord::encode(w, icr_ecc::Protection::Parity))
            .collect();
        backend.replica_region_mut().insert(block, words);
        let before: Vec<u64> = backend.replica_region().export_lru_order()[0].1.clone();

        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 21).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        assert_eq!(f.site, FaultSite::L2Replica { slot: 0 });
        let after: Vec<u64> = backend.replica_region().export_lru_order()[0].1.clone();
        assert_eq!(after[f.word], before[f.word] ^ (1 << f.bit));
        assert!(
            !backend.replica_region().word(0, f.word).is_clean(),
            "a direct flip must be visible to the copy's parity"
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn invalid_probability_panics() {
        FaultInjector::new(ErrorModel::Random, 1.5, 0);
    }

    #[test]
    fn region_site_is_a_recoverable_error_not_a_panic() {
        // Regression: a dL1-only consumer handed a region strike used to
        // abort (exit 101) inside the site accessor; it is a typed,
        // recoverable error now.
        let site = FaultSite::L2Replica { slot: 3 };
        let err = site.as_dl1().unwrap_err();
        assert_eq!(err.got, site);
        let msg = err.to_string();
        assert!(
            msg.contains("expected a dL1 line") && msg.contains("slot: 3"),
            "unhelpful mismatch message: {msg}"
        );
        // And the dual direction.
        let dl1 = FaultSite::DataL1 { set: 1, way: 2 };
        assert_eq!(dl1.as_dl1(), Ok((1, 2)));
        assert!(dl1.as_region_slot().is_err());
        assert_eq!(site.as_region_slot(), Ok(3));
    }

    #[test]
    fn without_site_bias_the_stream_is_unchanged() {
        // The importance machinery must be invisible in uniform mode:
        // same seed, same sites, same weights of exactly 1.
        let (mut a, mut backend_a) = loaded_cache();
        let (mut b, mut backend_b) = loaded_cache();
        let mut ia = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        let mut ib = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        ia.advance(&mut a, &mut backend_a, 0, 50);
        ib.advance(&mut b, &mut backend_b, 0, 50);
        assert_eq!(ia.log(), ib.log());
        assert_eq!(ia.last_weight(), 1.0);
    }

    #[test]
    fn unbiased_proposal_when_nothing_is_dirty_has_weight_one() {
        // All-clean cache: the proposal equals the uniform distribution,
        // so every draw must carry exactly weight 1.
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 13).with_site_bias(16.0);
        for cycle in 0..32 {
            assert!(inj.inject_one(&mut dl1, &mut backend, cycle));
            assert_eq!(inj.last_weight(), 1.0);
        }
    }

    #[test]
    fn biased_draw_prefers_dirty_parity_lines_and_weights_exactly() {
        // One dirty line among 16 under BaseP (parity, no replication):
        // with boost B the dirty line is drawn with probability
        // B/(15+B) and must carry weight (15+B)/(16B); clean lines carry
        // (15+B)/16.
        let boost = 16.0;
        let (mut dl1, mut backend) = loaded_cache();
        dl1.store(Addr(0x1000_0000), 100, &mut backend);
        let dirty_line = {
            let lines = dl1.valid_lines();
            *lines
                .iter()
                .find(|&&(s, w)| {
                    dl1.line_exposure_state(s, w) == Some(icr_core::ProtState::DirtyParity)
                })
                .expect("the stored line is dirty parity")
        };
        let total = dl1.valid_lines().len() as f64;
        assert_eq!(total, 16.0);
        let w_total = total - 1.0 + boost;
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 17)
            .with_site_bias(boost)
            .with_log();
        let mut dirty_hits = 0u32;
        let n = 2000;
        for cycle in 0..n {
            assert!(inj.inject_one(&mut dl1, &mut backend, cycle));
            let f = *inj.log().last().unwrap();
            if dl1_site(&f) == dirty_line {
                dirty_hits += 1;
                assert!(
                    (inj.last_weight() - w_total / (total * boost)).abs() < 1e-12,
                    "dirty-site weight off: {}",
                    inj.last_weight()
                );
            } else {
                assert!(
                    (inj.last_weight() - w_total / total).abs() < 1e-12,
                    "clean-site weight off: {}",
                    inj.last_weight()
                );
            }
            // Heal the strike so the cache state (and the dirty set)
            // stays fixed across draws.
            let (s, w) = dl1_site(&f);
            if f.in_check_bits {
                dl1.flip_check_bit(s, w, f.word, f.bit);
            } else {
                dl1.flip_data_bit(s, w, f.word, f.bit);
            }
        }
        // Expected dirty share boost/(15+boost) ≈ 0.516; a ±5σ band.
        let p = boost / w_total;
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        let observed = dirty_hits as f64 / n as f64;
        assert!(
            (observed - p).abs() < 5.0 * sigma,
            "dirty share {observed} too far from proposal {p}"
        );
    }

    #[test]
    #[should_panic(expected = "site bias must be finite and positive")]
    fn invalid_site_bias_panics() {
        FaultInjector::new(ErrorModel::Random, 1.0, 0).with_site_bias(0.0);
    }

    #[test]
    fn forced_arrival_fires_exactly_once_at_the_forced_cycle() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1e-9, 23)
            .with_max_faults(1)
            .with_forced_arrival(120)
            .with_log();
        // Windows before the arrival deliver nothing.
        assert_eq!(inj.advance(&mut dl1, &mut backend, 0, 100), 0);
        // Arrivals land in (from, to]: cycle 120 belongs to this window.
        assert_eq!(inj.advance(&mut dl1, &mut backend, 100, 120), 1);
        assert_eq!(inj.log()[0].cycle, 120);
        // Quiesced afterwards — no second delivery, ever.
        assert_eq!(inj.advance(&mut dl1, &mut backend, 120, 10_000), 0);
    }

    #[test]
    fn forced_arrival_consumes_no_arrival_rng() {
        // Same seed, forced vs p=1 immediate arrival at the same cycle:
        // the site/word/bit draws must coincide, because forcing skips
        // only the Bernoulli stream (which at p=1 consumes one draw per
        // cycle... so instead compare forced against inject_one, which
        // is the arrival-free baseline).
        let (mut a, mut backend_a) = loaded_cache();
        let (mut b, mut backend_b) = loaded_cache();
        let mut forced = FaultInjector::new(ErrorModel::Random, 1e-9, 31)
            .with_max_faults(1)
            .with_forced_arrival(7)
            .with_log();
        forced.advance(&mut a, &mut backend_a, 0, 50);
        let mut direct = FaultInjector::new(ErrorModel::Random, 1e-9, 31)
            .with_max_faults(1)
            .with_log();
        direct.inject_one(&mut b, &mut backend_b, 7);
        assert_eq!(forced.log(), direct.log());
    }

    #[test]
    fn conditional_arrival_is_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let t = conditional_arrival(1e-4, 5_000, seed);
            assert!((1..=5_000).contains(&t), "arrival {t} out of range");
            assert_eq!(t, conditional_arrival(1e-4, 5_000, seed));
        }
        // p=1 always arrives on the first cycle.
        assert_eq!(conditional_arrival(1.0, 100, 9), 1);
        // A one-cycle horizon leaves no choice.
        assert_eq!(conditional_arrival(0.3, 1, 9), 1);
    }

    #[test]
    fn conditional_arrival_matches_the_truncated_geometric() {
        // With p chosen so delivery within the horizon is likely but not
        // certain, the empirical mean of the conditional must match
        // E[T | T <= C] analytically (±5σ).
        let (p, c, n) = (2e-3, 1_000u64, 4_000u64);
        let q: f64 = 1.0 - p;
        let tail = 1.0 - q.powf(c as f64);
        // E[T | T<=C] = (1/p - (C + 1/p - C/tail*0 ...)) — compute by sum.
        let mean_true: f64 = (1..=c)
            .map(|t| t as f64 * q.powf(t as f64 - 1.0) * p / tail)
            .sum();
        let var_true: f64 = (1..=c)
            .map(|t| (t as f64 - mean_true).powi(2) * q.powf(t as f64 - 1.0) * p / tail)
            .sum();
        let mean_obs: f64 = (0..n)
            .map(|s| conditional_arrival(p, c, s) as f64)
            .sum::<f64>()
            / n as f64;
        let sigma = (var_true / n as f64).sqrt();
        assert!(
            (mean_obs - mean_true).abs() < 5.0 * sigma,
            "conditional mean {mean_obs} too far from {mean_true} (σ={sigma})"
        );
    }

    #[test]
    fn hot_block_lines_are_boosted_with_exact_weights() {
        // All 16 lines clean; declare 4 of them hot. With boost B the
        // hot class carries weight B each: ratios must be
        // (12 + 4B)/(16B) for hot sites and (12 + 4B)/16 for cold ones.
        let boost = 8.0;
        let (mut dl1, mut backend) = loaded_cache();
        let hot: HashSet<u64> = (0..4u64).map(|i| 0x1000_0000 + i * 64).collect();
        let hot = Arc::new(hot);
        let w_total = 12.0 + 4.0 * boost;
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 29)
            .with_site_bias(boost)
            .with_hot_blocks(hot.clone())
            .with_log();
        let mut hot_hits = 0u32;
        let n = 2000;
        for cycle in 0..n {
            assert!(inj.inject_one(&mut dl1, &mut backend, cycle));
            let f = *inj.log().last().unwrap();
            if hot.contains(&f.site_block) {
                hot_hits += 1;
                assert!(
                    (inj.last_weight() - w_total / (16.0 * boost)).abs() < 1e-12,
                    "hot-site weight off: {}",
                    inj.last_weight()
                );
            } else {
                assert!(
                    (inj.last_weight() - w_total / 16.0).abs() < 1e-12,
                    "cold-site weight off: {}",
                    inj.last_weight()
                );
            }
            let (s, w) = dl1_site(&f);
            if f.in_check_bits {
                dl1.flip_check_bit(s, w, f.word, f.bit);
            } else {
                dl1.flip_data_bit(s, w, f.word, f.bit);
            }
        }
        let p = 4.0 * boost / w_total;
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        let observed = hot_hits as f64 / n as f64;
        assert!(
            (observed - p).abs() < 5.0 * sigma,
            "hot share {observed} too far from proposal {p}"
        );
    }
}
