//! The injector: per-cycle Bernoulli fault arrivals applied to the dL1
//! and, for spill schemes, to the replica-aware L2 region.

use crate::model::ErrorModel;
use icr_core::DataL1;
use icr_mem::MemoryBackend;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Where an injected fault landed: a dL1 line, or a spilled replica in
/// the L2 region. The sample space is the union of both, weighted by
/// occupancy, so spilled copies face the same per-bit strike rate as
/// dL1-resident data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A valid dL1 line.
    DataL1 {
        /// Set index of the struck line.
        set: usize,
        /// Way of the struck line.
        way: usize,
    },
    /// An occupied slot of the L2 replica region.
    L2Replica {
        /// Region slot of the struck copy.
        slot: usize,
    },
}

/// Record of one injected fault (for logging and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Cycle at which the fault struck.
    pub cycle: u64,
    /// The struck storage location.
    pub site: FaultSite,
    /// Word within the line.
    pub word: usize,
    /// First (or only) flipped bit.
    pub bit: u32,
    /// `true` when the flip landed in the check-bit storage.
    pub in_check_bits: bool,
}

/// Injects transient faults into a [`DataL1`] at a constant per-cycle
/// probability, following one of the four [`ErrorModel`]s.
///
/// ```
/// use icr_core::{DataL1, DataL1Config, Scheme};
/// use icr_fault::{ErrorModel, FaultInjector};
/// use icr_mem::{Addr, HierarchyConfig, MemoryBackend};
///
/// let mut backend = MemoryBackend::new(&HierarchyConfig::default());
/// let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
/// dl1.load(Addr(0x1000_0000), 0, &mut backend);
///
/// // Probability 1: one fault per cycle, guaranteed.
/// let mut inj = FaultInjector::new(ErrorModel::Random, 1.0, 42);
/// let n = inj.advance(&mut dl1, &mut backend, 0, 10);
/// assert_eq!(n, 10);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: ErrorModel,
    p_per_cycle: f64,
    rng: SmallRng,
    injected: u64,
    max_faults: Option<u64>,
    log: Vec<InjectedFault>,
    keep_log: bool,
}

impl FaultInjector {
    /// An injector using `model` with per-cycle fault probability
    /// `p_per_cycle`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics unless `p_per_cycle` is in `[0, 1]`.
    pub fn new(model: ErrorModel, p_per_cycle: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_per_cycle),
            "probability must be in [0,1], got {p_per_cycle}"
        );
        FaultInjector {
            model,
            p_per_cycle,
            rng: SmallRng::seed_from_u64(seed),
            injected: 0,
            max_faults: None,
            log: Vec::new(),
            keep_log: false,
        }
    }

    /// Caps the total number of faults this injector will ever deliver.
    /// `with_max_faults(1)` is the single-event-upset mode Monte-Carlo
    /// campaigns use: the first Bernoulli arrival strikes, then the
    /// injector goes quiet, so every counted outcome is attributable to
    /// exactly one fault.
    pub fn with_max_faults(mut self, max: u64) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Enables recording of every injected fault (off by default to keep
    /// long runs cheap).
    pub fn with_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// The error model in use.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The fault log (empty unless [`with_log`](Self::with_log)).
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Advances simulated time from `from_cycle` (exclusive) to `to_cycle`
    /// (inclusive), flipping bits per the per-cycle probability. Returns
    /// the number of faults injected.
    pub fn advance(
        &mut self,
        dl1: &mut DataL1,
        backend: &mut MemoryBackend,
        from_cycle: u64,
        to_cycle: u64,
    ) -> u64 {
        if self.p_per_cycle == 0.0 || to_cycle <= from_cycle || self.quiesced() {
            return 0;
        }
        let mut n = 0;
        for cycle in from_cycle..to_cycle {
            if self.rng.gen::<f64>() < self.p_per_cycle && self.inject_one(dl1, backend, cycle + 1)
            {
                n += 1;
                if self.quiesced() {
                    break;
                }
            }
        }
        n
    }

    /// `true` once the [`with_max_faults`](Self::with_max_faults) budget
    /// is exhausted.
    pub fn quiesced(&self) -> bool {
        self.max_faults.is_some_and(|m| self.injected >= m)
    }

    /// Injects exactly one fault event right now (used by tests and by
    /// deterministic experiments), striking uniformly across dL1 lines
    /// and occupied L2 replica-region slots. Returns `false` when
    /// neither holds anything to strike.
    ///
    /// When the region is empty — every scheme whose placement tier is
    /// dL1-only — the draw collapses to the pure dL1 sample space, so
    /// established seeds reproduce the same fault sites they always did.
    pub fn inject_one(
        &mut self,
        dl1: &mut DataL1,
        backend: &mut MemoryBackend,
        cycle: u64,
    ) -> bool {
        let lines = dl1.valid_lines();
        let slots = backend.replica_region().occupied();
        let total = lines.len() + slots.len();
        if total == 0 {
            return false;
        }
        let idx = self.rng.gen_range(0..total);
        let (site, words) = if idx < lines.len() {
            let (set, way) = lines[idx];
            (
                FaultSite::DataL1 { set, way },
                dl1.geometry().words_per_block(),
            )
        } else {
            let (slot, _) = slots[idx - lines.len()];
            (
                FaultSite::L2Replica { slot },
                backend.replica_region().words(slot).len(),
            )
        };
        let word = self.rng.gen_range(0..words);
        match self.model {
            ErrorModel::Direct => {
                let bit = self.rng.gen_range(0..64);
                flip_data(dl1, backend, site, word, bit);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Adjacent => {
                let bit = self.rng.gen_range(0..63);
                flip_data(dl1, backend, site, word, bit);
                flip_data(dl1, backend, site, word, bit + 1);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Column => {
                let bit = self.rng.gen_range(0..64);
                let next_word = (word + 1) % words;
                flip_data(dl1, backend, site, word, bit);
                flip_data(dl1, backend, site, next_word, bit);
                self.record(cycle, site, word, bit, false);
            }
            ErrorModel::Random => {
                // 64 data bits + 8 check bits per word: strike uniformly.
                let bit = self.rng.gen_range(0..72);
                if bit < 64 {
                    flip_data(dl1, backend, site, word, bit);
                    self.record(cycle, site, word, bit, false);
                } else {
                    flip_check(dl1, backend, site, word, bit - 64);
                    self.record(cycle, site, word, bit - 64, true);
                }
            }
        }
        self.injected += 1;
        true
    }

    fn record(&mut self, cycle: u64, site: FaultSite, word: usize, bit: u32, chk: bool) {
        if self.keep_log {
            self.log.push(InjectedFault {
                cycle,
                site,
                word,
                bit,
                in_check_bits: chk,
            });
        }
    }
}

fn flip_data(
    dl1: &mut DataL1,
    backend: &mut MemoryBackend,
    site: FaultSite,
    word: usize,
    bit: u32,
) {
    let flipped = match site {
        FaultSite::DataL1 { set, way } => dl1.flip_data_bit(set, way, word, bit),
        FaultSite::L2Replica { slot } => {
            backend.replica_region_mut().flip_data_bit(slot, word, bit)
        }
    };
    debug_assert!(flipped, "fault site {site:?} vanished mid-injection");
}

fn flip_check(
    dl1: &mut DataL1,
    backend: &mut MemoryBackend,
    site: FaultSite,
    word: usize,
    bit: u32,
) {
    let flipped = match site {
        FaultSite::DataL1 { set, way } => dl1.flip_check_bit(set, way, word, bit),
        FaultSite::L2Replica { slot } => {
            backend.replica_region_mut().flip_check_bit(slot, word, bit)
        }
    };
    debug_assert!(flipped, "fault site {site:?} vanished mid-injection");
}

#[cfg(test)]
mod tests {
    use super::*;
    use icr_core::{DataL1Config, Scheme};
    use icr_mem::{Addr, HierarchyConfig, MemoryBackend};

    fn loaded_cache() -> (DataL1, MemoryBackend) {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
        for i in 0..16u64 {
            dl1.load(Addr(0x1000_0000 + i * 64), i, &mut backend);
        }
        (dl1, backend)
    }

    /// The dL1 coordinates of a logged fault (panics on a region fault).
    fn dl1_site(f: &InjectedFault) -> (usize, usize) {
        match f.site {
            FaultSite::DataL1 { set, way } => (set, way),
            FaultSite::L2Replica { slot } => panic!("expected a dL1 fault, got region slot {slot}"),
        }
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Random, 0.0, 1);
        assert_eq!(inj.advance(&mut dl1, &mut backend, 0, 100_000), 0);
    }

    #[test]
    fn empty_cache_cannot_be_struck() {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_P));
        let mut inj = FaultInjector::new(ErrorModel::Random, 1.0, 1);
        assert_eq!(inj.advance(&mut dl1, &mut backend, 0, 10), 0);
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 0.1, 7);
        let n = inj.advance(&mut dl1, &mut backend, 0, 10_000);
        assert!((800..1200).contains(&n), "expected ~1000, got {n}");
    }

    #[test]
    fn direct_fault_is_detectable_by_parity() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 3).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        // Reload every resident word of that line via the public API: the
        // parity machinery must detect (and, clean line, recover from L2).
        let view = dl1.line_view(set, way).unwrap();
        let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
        dl1.load(addr, 1, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
    }

    #[test]
    fn adjacent_fault_defeats_parity_detection() {
        // Two adjacent bits in one byte alias for byte parity: the load
        // sees clean parity and silently consumes wrong data. This is the
        // failure mode the paper's ECC/NMR discussion worries about.
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Adjacent, 1.0, 5).with_log();
        // Find an injection whose two bits fall in the same byte.
        loop {
            inj.log.clear();
            assert!(inj.inject_one(&mut dl1, &mut backend, 0));
            let f = inj.log()[0];
            if f.bit % 8 != 7 {
                // bits f.bit and f.bit+1 share a byte
                let (set, way) = dl1_site(&f);
                let view = dl1.line_view(set, way).unwrap();
                let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
                let before = dl1.stats().errors_detected;
                dl1.load(addr, 1, &mut backend);
                assert_eq!(
                    dl1.stats().errors_detected,
                    before,
                    "same-byte adjacent flips must slip past parity"
                );
                break;
            }
            // Bits straddle a byte boundary: re-roll on a fresh cache.
            let (d, _) = loaded_cache();
            dl1 = d;
        }
    }

    #[test]
    fn adjacent_fault_is_detected_by_secded() {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_ECC));
        dl1.load(Addr(0x1000_0000), 0, &mut backend);
        let mut inj = FaultInjector::new(ErrorModel::Adjacent, 1.0, 5).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        let view = dl1.line_view(set, way).unwrap();
        let addr = Addr(view.addr.raw() + (f.word as u64) * 8);
        dl1.load(addr, 1, &mut backend);
        // SEC-DED flags the double error; the clean line refetches from L2.
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
        assert_eq!(dl1.stats().errors_corrected_ecc, 0);
    }

    #[test]
    fn column_fault_hits_two_words() {
        let (mut dl1, mut backend) = loaded_cache();
        let mut inj = FaultInjector::new(ErrorModel::Column, 1.0, 9).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        let (set, way) = dl1_site(&f);
        let view = dl1.line_view(set, way).unwrap();
        let words = dl1.geometry().words_per_block();
        let w2 = (f.word + 1) % words;
        // Both struck words differ from the architecturally-correct data.
        let golden = backend.golden_block(view.addr);
        assert_ne!(dl1.word_data(set, way, f.word), Some(golden.word(f.word)));
        assert_ne!(dl1.word_data(set, way, w2), Some(golden.word(w2)));
        // The first load detects its word's error; the clean-line refetch
        // from L2 heals the *entire* line, including the second word.
        dl1.load(Addr(view.addr.raw() + (f.word as u64) * 8), 1, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1);
        assert_eq!(dl1.stats().errors_recovered_l2, 1);
        assert_eq!(dl1.word_data(set, way, w2), Some(golden.word(w2)));
        dl1.load(Addr(view.addr.raw() + (w2 as u64) * 8), 2, &mut backend);
        assert_eq!(dl1.stats().errors_detected, 1, "second word already healed");
    }

    #[test]
    fn determinism_same_seed_same_fault_sites() {
        let (mut a, mut backend_a) = loaded_cache();
        let (mut b, mut backend_b) = loaded_cache();
        let mut ia = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        let mut ib = FaultInjector::new(ErrorModel::Random, 1.0, 11).with_log();
        ia.advance(&mut a, &mut backend_a, 0, 50);
        ib.advance(&mut b, &mut backend_b, 0, 50);
        assert_eq!(ia.log(), ib.log());
    }

    #[test]
    fn spilled_replicas_share_the_strike_space() {
        // An empty dL1 plus one region-resident copy: every strike must
        // land in the region, and the flip must corrupt the stored word.
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::ICR_P_PS_S_L2));
        let block = icr_mem::BlockAddr(0x1000_0000);
        let words: Vec<_> = backend
            .golden_block(block)
            .words()
            .iter()
            .map(|&w| icr_ecc::ProtectedWord::encode(w, icr_ecc::Protection::Parity))
            .collect();
        backend.replica_region_mut().insert(block, words);
        let before: Vec<u64> = backend.replica_region().export_lru_order()[0].1.clone();

        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, 21).with_log();
        assert!(inj.inject_one(&mut dl1, &mut backend, 0));
        let f = inj.log()[0];
        assert_eq!(f.site, FaultSite::L2Replica { slot: 0 });
        let after: Vec<u64> = backend.replica_region().export_lru_order()[0].1.clone();
        assert_eq!(after[f.word], before[f.word] ^ (1 << f.bit));
        assert!(
            !backend.replica_region().word(0, f.word).is_clean(),
            "a direct flip must be visible to the copy's parity"
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn invalid_probability_panics() {
        FaultInjector::new(ErrorModel::Random, 1.5, 0);
    }
}
