//! Property tests for the fault-injection layer: single-bit strikes must
//! end the way the paper's §5.3 recovery taxonomy says they do, and the
//! injector itself must be deterministic enough to anchor the Monte-Carlo
//! campaign engine.

use icr_core::{DataL1, DataL1Config, Scheme};
use icr_fault::{trial_seed, ErrorModel, FaultInjector};
use icr_mem::{Addr, HierarchyConfig, MemoryBackend};
use proptest::prelude::*;

/// A short mixed load/store workload: (block index, word index, is_store).
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    prop::collection::vec((0u8..32, 0u8..8, proptest::any::<bool>()), 8..80)
}

/// Replays `ops` against a fresh cache of `scheme` and returns it with
/// its backend.
fn warmed(scheme: Scheme, ops: &[(u8, u8, bool)]) -> (DataL1, MemoryBackend) {
    let mut cfg = DataL1Config::paper_default(scheme);
    cfg.oracle = true;
    let mut dl1 = DataL1::new(cfg);
    let mut backend = MemoryBackend::new(&HierarchyConfig::default());
    for (i, &(block, word, is_store)) in ops.iter().enumerate() {
        let addr = Addr(0x1000_0000 + block as u64 * 64 + word as u64 * 8);
        if is_store {
            dl1.store(addr, i as u64 * 3, &mut backend);
        } else {
            dl1.load(addr, i as u64 * 3, &mut backend);
        }
    }
    (dl1, backend)
}

proptest! {
    /// A single-bit flip in a *replicated, dirty primary* line is always
    /// healed from the replica — never consumed silently, never lost.
    /// This is ICR's headline claim: parity detects, the replica repairs.
    #[test]
    fn flip_in_replicated_dirty_primary_recovers_via_replica(
        ops in arb_ops(),
        pick in proptest::any::<usize>(),
        word in 0usize..8,
        bit in 0u32..64,
    ) {
        let (mut dl1, mut backend) = warmed(Scheme::ICR_P_PS_S, &ops);
        let candidates: Vec<(usize, usize)> = dl1
            .valid_lines()
            .into_iter()
            .filter(|&(s, w)| {
                dl1.line_view(s, w).is_some_and(|v| {
                    !v.is_replica && v.dirty && dl1.has_replica(v.addr)
                })
            })
            .collect();
        prop_assume!(!candidates.is_empty());
        let (s, w) = candidates[pick % candidates.len()];
        let view = dl1.line_view(s, w).expect("candidate is valid");

        dl1.flip_data_bit(s, w, word, bit);
        dl1.load(Addr(view.addr.raw() + word as u64 * 8), 10_000_000, &mut backend);

        let st = dl1.stats();
        prop_assert_eq!(st.silent_corruptions, 0,
            "replica recovery must never consume corrupt data");
        prop_assert_eq!(st.unrecoverable_loads, 0,
            "a replicated line is never the paper's unrecoverable case");
        prop_assert_eq!(st.errors_detected, 1,
            "byte parity always flags a single-bit flip");
        prop_assert_eq!(st.errors_recovered_replica, 1,
            "dirty data can only come back from the replica");
    }

    /// A single-bit flip under BaseECC is corrected in place by SEC-DED,
    /// whatever the line's state.
    #[test]
    fn flip_under_base_ecc_is_corrected_in_place(
        ops in arb_ops(),
        pick in proptest::any::<usize>(),
        word in 0usize..8,
        bit in 0u32..64,
    ) {
        let (mut dl1, mut backend) =
            warmed(Scheme::BASE_ECC, &ops);
        let lines = dl1.valid_lines();
        prop_assume!(!lines.is_empty());
        let (s, w) = lines[pick % lines.len()];
        let view = dl1.line_view(s, w).expect("valid");

        dl1.flip_data_bit(s, w, word, bit);
        dl1.load(Addr(view.addr.raw() + word as u64 * 8), 10_000_000, &mut backend);

        let st = dl1.stats();
        prop_assert_eq!(st.errors_corrected_ecc, 1,
            "SEC-DED corrects any single-bit data flip");
        prop_assert_eq!(st.unrecoverable_loads, 0);
        prop_assert_eq!(st.silent_corruptions, 0);
    }

    /// A single-bit flip under BaseP (byte parity only) is always
    /// *detected*; whether it is survivable depends exactly on dirtiness —
    /// clean lines refetch from L2, dirty lines are the paper's
    /// unrecoverable case. Either way the corruption is never silent.
    #[test]
    fn flip_under_base_parity_is_detected_never_silent(
        ops in arb_ops(),
        pick in proptest::any::<usize>(),
        word in 0usize..8,
        bit in 0u32..64,
    ) {
        let (mut dl1, mut backend) = warmed(Scheme::BASE_P, &ops);
        let lines = dl1.valid_lines();
        prop_assume!(!lines.is_empty());
        let (s, w) = lines[pick % lines.len()];
        let view = dl1.line_view(s, w).expect("valid");

        dl1.flip_data_bit(s, w, word, bit);
        dl1.load(Addr(view.addr.raw() + word as u64 * 8), 10_000_000, &mut backend);

        let st = dl1.stats();
        prop_assert_eq!(st.errors_detected, 1,
            "byte parity always flags a single-bit flip");
        prop_assert_eq!(st.silent_corruptions, 0);
        if view.dirty {
            prop_assert_eq!(st.unrecoverable_loads, 1,
                "dirty + parity-only + no replica is unrecoverable");
        } else {
            prop_assert_eq!(st.errors_recovered_l2, 1,
                "clean lines refetch from L2");
            prop_assert_eq!(st.unrecoverable_loads, 0);
        }
    }

    /// Splitting `advance` into arbitrary chunks never changes what gets
    /// injected: the fault stream is a pure function of (seed, cycles,
    /// cache state), not of how the simulator slices time. The campaign
    /// engine's determinism rests on this.
    #[test]
    fn advance_is_chunking_invariant(
        ops in arb_ops(),
        seed in proptest::any::<u64>(),
        split in 1u64..99,
    ) {
        let cycles = 100u64;
        let (mut a, mut backend_a) = warmed(Scheme::BASE_P, &ops);
        let (mut b, mut backend_b) = warmed(Scheme::BASE_P, &ops);

        let mut inj_a = FaultInjector::new(ErrorModel::Random, 0.3, seed).with_log();
        inj_a.advance(&mut a, &mut backend_a, 0, cycles);

        let mut inj_b = FaultInjector::new(ErrorModel::Random, 0.3, seed).with_log();
        inj_b.advance(&mut b, &mut backend_b, 0, split);
        inj_b.advance(&mut b, &mut backend_b, split, cycles);

        prop_assert_eq!(inj_a.injected(), inj_b.injected());
        prop_assert_eq!(inj_a.log(), inj_b.log());
    }

    /// `with_max_faults` is a hard budget: the injector quiesces exactly
    /// at the cap, even at probability 1.
    #[test]
    fn max_faults_budget_is_respected(
        ops in arb_ops(),
        seed in proptest::any::<u64>(),
        cap in 1u64..5,
    ) {
        let (mut dl1, mut backend) = warmed(Scheme::BASE_P, &ops);
        let mut inj = FaultInjector::new(ErrorModel::Direct, 1.0, seed)
            .with_max_faults(cap);
        let n = inj.advance(&mut dl1, &mut backend, 0, 1000);
        prop_assert_eq!(n, cap);
        prop_assert_eq!(inj.injected(), cap);
        prop_assert!(inj.quiesced());
        // Further advances are no-ops.
        prop_assert_eq!(inj.advance(&mut dl1, &mut backend, 1000, 2000), 0);
        prop_assert_eq!(inj.injected(), cap);
    }

    /// Per-trial seed derivation is collision-free in practice: distinct
    /// trial indices under the same master seed give distinct seeds, and
    /// the same index always gives the same seed.
    #[test]
    fn trial_seeds_are_stable_and_distinct(
        master in proptest::any::<u64>(),
        i in 0u64..1_000_000,
        j in 0u64..1_000_000,
    ) {
        prop_assert_eq!(trial_seed(master, i), trial_seed(master, i));
        if i != j {
            prop_assert_ne!(trial_seed(master, i), trial_seed(master, j));
        }
    }
}
