//! Property-based tests for the memory substrate: geometry round-trips,
//! LRU ordering invariants, cache capacity bounds and write-buffer bounds
//! must hold for arbitrary access streams.

use icr_mem::{
    AccessKind, Addr, BlockAddr, Cache, CacheGeometry, DataBlock, LruQueue, MainMemory, SetIndex,
    WriteBuffer,
};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    // size 2^9..2^16, assoc 2^0..2^3, block 2^3..2^7, with size >= assoc*block
    (9u32..=16, 0u32..=3, 3u32..=7).prop_filter_map("cache too small", |(s, a, b)| {
        let (size, assoc, block) = (1usize << s, 1usize << a, 1usize << b);
        (size >= assoc * block).then(|| CacheGeometry::new(size, assoc, block))
    })
}

proptest! {
    /// tag + set index fully determine the block address.
    #[test]
    fn geometry_tag_set_roundtrip(g in arb_geometry(), raw: u64) {
        let b = g.block_addr(Addr(raw));
        let reassembled = g.block_addr_from_parts(g.tag(b), g.set_index(b));
        prop_assert_eq!(reassembled, b);
    }

    /// Block addresses are aligned and contain their byte address.
    #[test]
    fn block_addr_alignment(g in arb_geometry(), raw: u64) {
        let b = g.block_addr(Addr(raw));
        prop_assert_eq!(b.raw() % g.block_bytes() as u64, 0);
        prop_assert!(b.raw() <= raw);
        prop_assert!(raw - b.raw() < g.block_bytes() as u64);
    }

    /// distance-k placement always lands in a valid set, and distance-0 is
    /// the identity (the paper's "horizontal replication").
    #[test]
    fn distance_k_stays_in_range(g in arb_geometry(), set_raw: usize, k in -1000isize..1000) {
        let set = SetIndex(set_raw % g.num_sets());
        let target = g.set_at_distance(set, k);
        prop_assert!(target.0 < g.num_sets());
        prop_assert_eq!(g.set_at_distance(set, 0), set);
        // Moving +k then -k returns home.
        prop_assert_eq!(g.set_at_distance(target, -k), set);
    }

    /// After any sequence of touches, the LRU order is a permutation of the
    /// ways and `touch(w)` makes `w` the MRU.
    #[test]
    fn lru_order_is_permutation(ways in 1usize..8, touches in prop::collection::vec(0usize..8, 0..64)) {
        let mut q = LruQueue::new(ways);
        for t in touches {
            let w = t % ways;
            q.touch(w);
            prop_assert_eq!(q.mru_to_lru()[0], w);
        }
        let mut seen = q.mru_to_lru().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..ways).collect::<Vec<_>>());
    }

    /// victim_among returns an eligible way that is no more recent than any
    /// other eligible way.
    #[test]
    fn victim_among_is_lru_of_eligible(
        ways in 2usize..8,
        touches in prop::collection::vec(0usize..8, 0..32),
        mask_bits in 0u8..=255,
    ) {
        let mut q = LruQueue::new(ways);
        for t in touches {
            q.touch(t % ways);
        }
        let mask: Vec<bool> = (0..ways).map(|w| mask_bits & (1 << w) != 0).collect();
        match q.victim_among(&mask) {
            None => prop_assert!(mask.iter().all(|&e| !e)),
            Some(v) => {
                prop_assert!(mask[v]);
                // No eligible way appears after v in MRU→LRU order.
                let pos = q.mru_to_lru().iter().position(|&w| w == v).unwrap();
                for &w in &q.mru_to_lru()[pos + 1..] {
                    prop_assert!(!mask[w], "way {} is eligible and older", w);
                }
            }
        }
    }

    /// A cache never holds more blocks than its capacity, and a block just
    /// filled is resident.
    #[test]
    fn cache_capacity_bound(accesses in prop::collection::vec(0u64..64, 1..200)) {
        let g = CacheGeometry::new(512, 2, 64); // 4 sets, 2 ways
        let mut c = Cache::new(g, 1);
        let capacity = g.num_sets() * g.associativity();
        for a in accesses {
            let block = g.block_addr(Addr(a * 64));
            if !c.lookup(block, AccessKind::Read) {
                c.fill(block, DataBlock::pristine(block, g.words_per_block()), false);
            }
            prop_assert!(c.contains(block));
            prop_assert!(c.resident_blocks() <= capacity);
        }
    }

    /// Dirty data survives eviction: write a word, force eviction through
    /// conflict fills, and the evicted block carries the written value.
    #[test]
    fn dirty_eviction_carries_data(value: u64, word in 0usize..8) {
        let g = CacheGeometry::new(128, 1, 64); // 2 sets, direct-mapped
        let mut c = Cache::new(g, 1);
        let a = BlockAddr(0);
        c.fill(a, DataBlock::zeroed(8), false);
        c.write_word(a, word, value);
        let ev = c.fill(BlockAddr(128), DataBlock::zeroed(8), false).unwrap();
        prop_assert_eq!(ev.addr, a);
        prop_assert!(ev.dirty);
        prop_assert_eq!(ev.data.word(word), value);
    }

    /// Memory read-your-writes for arbitrary write sequences.
    #[test]
    fn memory_read_your_writes(writes in prop::collection::vec((0u64..32, any::<u64>()), 1..50)) {
        let mut m = MainMemory::new(8, 100);
        let mut last = std::collections::HashMap::new();
        for (blk, val) in writes {
            let addr = BlockAddr(blk * 64);
            let mut d = DataBlock::zeroed(8);
            d.set_word(0, val);
            m.write_block(addr, d);
            last.insert(addr, val);
        }
        for (addr, val) in last {
            prop_assert_eq!(m.read_block(addr).0.word(0), val);
        }
    }

    /// The write buffer never exceeds capacity and never reports stalls
    /// when it has room.
    #[test]
    fn write_buffer_bounds(
        capacity in 1usize..8,
        pushes in prop::collection::vec((0u64..1000, 0u64..16), 1..100),
    ) {
        let mut wb = WriteBuffer::new(capacity, 6);
        let mut now = 0u64;
        for (dt, blk) in pushes {
            now += dt;
            let before = wb.occupancy();
            let stall = wb.push(now, BlockAddr(blk * 64));
            if before < capacity {
                prop_assert_eq!(stall, 0);
            }
            prop_assert!(wb.occupancy() <= capacity);
        }
        prop_assert!(wb.coalesced() <= wb.pushes());
    }
}
