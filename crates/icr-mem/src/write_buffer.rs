//! A coalescing write buffer between a write-through L1 and the L2.
//!
//! Used by the paper's §5.8 comparison: `BaseP` with a write-through dL1
//! "using a coalescing write-buffer of 8 entries" ([Skadron & Clark 97]).
//! Writes enqueue here instead of stalling for L2; the buffer drains one
//! entry per L2-write latency; a write that finds the buffer full stalls
//! the processor until the head entry retires.

use crate::addr::BlockAddr;
use std::collections::VecDeque;

/// Coalescing write buffer with a fixed number of entries.
///
/// Time is supplied by the caller as an absolute cycle count, so the buffer
/// composes with any driving model.
///
/// ```
/// use icr_mem::{WriteBuffer, BlockAddr};
///
/// let mut wb = WriteBuffer::new(2, 6);
/// assert_eq!(wb.push(0, BlockAddr(0x00)), 0);   // room available
/// assert_eq!(wb.push(0, BlockAddr(0x40)), 0);   // room available
/// assert_eq!(wb.push(0, BlockAddr(0x40)), 0);   // coalesces, no stall
/// let stall = wb.push(0, BlockAddr(0x80));      // full: wait for the head
/// assert!(stall > 0);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    service_latency: u64,
    /// Pending block writes with the cycle at which each retires to L2.
    entries: VecDeque<(BlockAddr, u64)>,
    /// When the L2 write port frees up.
    port_free_at: u64,
    /// Writes absorbed (including coalesced).
    pushes: u64,
    /// Pushes that coalesced into an existing entry.
    coalesced: u64,
    /// Entries retired to L2 (equals L2 write traffic).
    retired: u64,
    /// Total stall cycles charged to full-buffer pushes.
    stall_cycles: u64,
}

impl WriteBuffer {
    /// A buffer of `capacity` entries, each taking `service_latency` cycles
    /// of L2 time to retire.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, service_latency: u64) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            capacity,
            service_latency,
            entries: VecDeque::new(),
            port_free_at: 0,
            pushes: 0,
            coalesced: 0,
            retired: 0,
            stall_cycles: 0,
        }
    }

    fn drain(&mut self, now: u64) {
        while let Some(&(_, ready)) = self.entries.front() {
            if ready <= now {
                self.entries.pop_front();
                self.retired += 1;
            } else {
                break;
            }
        }
    }

    /// Absorbs a block write at cycle `now`; returns the stall cycles the
    /// processor must wait (0 in the common case).
    pub fn push(&mut self, now: u64, block: BlockAddr) -> u64 {
        self.pushes += 1;
        self.drain(now);
        if self.entries.iter().any(|&(a, _)| a == block) {
            self.coalesced += 1;
            return 0;
        }
        let mut stall = 0;
        if self.entries.len() == self.capacity {
            // Wait for the head entry to retire, then drain everything
            // whose service completes inside the stall window — by the
            // time the processor resumes at `now + stall`, all of it has
            // logically reached L2, and leaving it queued would inflate
            // occupancy and let a later push coalesce into a write that
            // already retired.
            let (_, ready) = *self.entries.front().expect("capacity > 0");
            stall = ready.saturating_sub(now);
            self.stall_cycles += stall;
            self.drain(now + stall);
        }
        let start = self.port_free_at.max(now + stall);
        let ready = start + self.service_latency;
        self.port_free_at = ready;
        self.entries.push_back((block, ready));
        stall
    }

    /// Entries currently pending.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// The configured entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured per-entry L2 service latency.
    pub fn service_latency(&self) -> u64 {
        self.service_latency
    }

    /// The retire cycle of every pending entry, in queue order — exported
    /// so a reference model can audit that nothing already due is still
    /// queued.
    pub fn pending_ready(&self) -> Vec<u64> {
        self.entries.iter().map(|&(_, ready)| ready).collect()
    }

    /// Writes absorbed (including coalesced ones).
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes that merged into an existing pending entry.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Entries retired so far — the L2 write traffic this buffer generated.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Entries retired plus entries still pending: total distinct L2 writes
    /// this buffer will have generated once drained.
    pub fn total_l2_writes(&self) -> u64 {
        self.retired + self.entries.len() as u64
    }

    /// Total stall cycles charged so far.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushes_without_pressure_do_not_stall() {
        let mut wb = WriteBuffer::new(8, 6);
        for i in 0..8u64 {
            assert_eq!(wb.push(0, BlockAddr(i * 64)), 0);
        }
        assert_eq!(wb.occupancy(), 8);
    }

    #[test]
    fn coalescing_merges_same_block() {
        let mut wb = WriteBuffer::new(2, 6);
        wb.push(0, BlockAddr(0));
        wb.push(0, BlockAddr(0));
        wb.push(0, BlockAddr(0));
        assert_eq!(wb.occupancy(), 1);
        assert_eq!(wb.coalesced(), 2);
    }

    #[test]
    fn full_buffer_stalls_until_head_retires() {
        let mut wb = WriteBuffer::new(1, 6);
        assert_eq!(wb.push(0, BlockAddr(0)), 0); // head retires at 6
        let stall = wb.push(0, BlockAddr(64));
        assert_eq!(stall, 6);
        assert_eq!(wb.stall_cycles(), 6);
    }

    #[test]
    fn entries_drain_with_time() {
        let mut wb = WriteBuffer::new(1, 6);
        wb.push(0, BlockAddr(0));
        // By cycle 10 the head has retired: no stall.
        assert_eq!(wb.push(10, BlockAddr(64)), 0);
        assert_eq!(wb.retired(), 1);
    }

    #[test]
    fn serial_port_backs_up() {
        let mut wb = WriteBuffer::new(4, 6);
        wb.push(0, BlockAddr(0)); // retires at 6
        wb.push(0, BlockAddr(64)); // retires at 12
        wb.push(0, BlockAddr(128)); // retires at 18
        wb.push(0, BlockAddr(192)); // retires at 24
        let stall = wb.push(0, BlockAddr(256)); // head ready at 6
        assert_eq!(stall, 6);
        assert_eq!(wb.occupancy(), 4);
    }

    #[test]
    fn stall_window_drains_before_inserting() {
        // A full-buffer push charges a stall to `now + stall`; everything
        // due by then has logically reached L2 and must leave the queue
        // before the new write is inserted.
        let mut wb = WriteBuffer::new(2, 6);
        wb.push(0, BlockAddr(0)); // ready at 6
        wb.push(0, BlockAddr(64)); // ready at 12
        let stall = wb.push(0, BlockAddr(128)); // full: head due at 6
        assert_eq!(stall, 6);
        assert_eq!(wb.retired(), 1);
        assert_eq!(wb.occupancy(), 2);
        // Nothing still pending is due inside the charged stall window.
        assert!(wb.pending_ready().iter().all(|&r| r > 6));
        // The head write retired during that stall; a later push of the
        // same block must not coalesce into it.
        assert_eq!(wb.push(8, BlockAddr(0)), 4); // full again: head due at 12
        assert_eq!(wb.coalesced(), 0);
        assert_eq!(wb.retired(), 2);
        assert!(wb.pending_ready().iter().all(|&r| r > 12));
    }

    #[test]
    fn total_l2_writes_counts_pending_and_retired() {
        let mut wb = WriteBuffer::new(8, 6);
        wb.push(0, BlockAddr(0));
        wb.push(0, BlockAddr(0)); // coalesced
        wb.push(100, BlockAddr(64)); // first has retired by now
        assert_eq!(wb.retired(), 1);
        assert_eq!(wb.total_l2_writes(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        WriteBuffer::new(0, 6);
    }
}
