//! A generic set-associative, write-back, write-allocate cache with real
//! data storage — used for the L2 and the instruction L1. (The data L1,
//! with its replicas and protection codes, lives in `icr-core` and builds
//! on the same geometry/LRU primitives.)

use crate::addr::{BlockAddr, CacheGeometry, SetIndex};
use crate::block::DataBlock;
use crate::lru::LruQueue;
use crate::stats::CacheStats;

/// Whether a lookup models a read or a write, for stats purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load / instruction fetch.
    Read,
    /// Store / writeback arriving from an upper level.
    Write,
}

/// A valid block evicted by a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    /// The block's address.
    pub addr: BlockAddr,
    /// The block's data at eviction time.
    pub data: DataBlock,
    /// `true` when the block was dirty and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    data: DataBlock,
}

#[derive(Debug, Clone)]
struct Set {
    lines: Vec<Line>,
    lru: LruQueue,
}

/// Set-associative write-back cache storing real block data.
///
/// ```
/// use icr_mem::{Cache, CacheGeometry, AccessKind, DataBlock, BlockAddr};
///
/// let mut l2 = Cache::new(CacheGeometry::new(256 * 1024, 4, 64), 6);
/// let a = BlockAddr(0x1000);
/// assert!(!l2.lookup(a, AccessKind::Read));          // cold miss
/// l2.fill(a, DataBlock::pristine(a, 8), false);
/// assert!(l2.lookup(a, AccessKind::Read));           // now hits
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    hit_latency: u64,
    sets: Vec<Set>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given shape and hit latency.
    pub fn new(geometry: CacheGeometry, hit_latency: u64) -> Self {
        let ways = geometry.associativity();
        let words = geometry.words_per_block();
        let sets = (0..geometry.num_sets())
            .map(|_| Set {
                lines: (0..ways)
                    .map(|_| Line {
                        valid: false,
                        dirty: false,
                        tag: 0,
                        data: DataBlock::zeroed(words),
                    })
                    .collect(),
                lru: LruQueue::new(ways),
            })
            .collect();
        Cache {
            geometry,
            hit_latency,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache's shape.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Latency of a hit, in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&self, addr: BlockAddr) -> SetIndex {
        self.geometry.set_index(addr)
    }

    fn find_way(&self, addr: BlockAddr) -> Option<usize> {
        let tag = self.geometry.tag(addr);
        let set = &self.sets[self.set_of(addr).0];
        set.lines.iter().position(|l| l.valid && l.tag == tag)
    }

    /// `true` when the block is resident (no state change, no stats).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.find_way(addr).is_some()
    }

    /// Records a read hit on a line the caller *knows* is resident and
    /// already most-recently-used in its set — the LRU touch would be a
    /// no-op, so only the stats move. Fetch fast paths use this to skip
    /// the tag scan on back-to-back accesses to one block; it must never
    /// be called speculatively.
    pub fn count_mru_read_hit(&mut self) {
        self.stats.read_accesses += 1;
        self.stats.read_hits += 1;
    }

    /// Looks the block up, updating LRU and stats. Returns `true` on hit.
    /// On a write hit, the line is marked dirty.
    pub fn lookup(&mut self, addr: BlockAddr, kind: AccessKind) -> bool {
        let hit = self.find_way(addr);
        match kind {
            AccessKind::Read => {
                self.stats.read_accesses += 1;
                if hit.is_some() {
                    self.stats.read_hits += 1;
                }
            }
            AccessKind::Write => {
                self.stats.write_accesses += 1;
                if hit.is_some() {
                    self.stats.write_hits += 1;
                }
            }
        }
        if let Some(way) = hit {
            let set_idx = self.set_of(addr).0;
            let set = &mut self.sets[set_idx];
            set.lru.touch(way);
            if kind == AccessKind::Write {
                set.lines[way].dirty = true;
            }
            true
        } else {
            false
        }
    }

    /// Reads a word of a resident block, updating LRU.
    ///
    /// Returns `None` when the block is not resident.
    pub fn read_word(&mut self, addr: BlockAddr, word: usize) -> Option<u64> {
        let way = self.find_way(addr)?;
        let set_idx = self.set_of(addr).0;
        let set = &mut self.sets[set_idx];
        set.lru.touch(way);
        Some(set.lines[way].data.word(word))
    }

    /// Writes a word of a resident block, marking it dirty.
    ///
    /// Returns `false` when the block is not resident.
    pub fn write_word(&mut self, addr: BlockAddr, word: usize, value: u64) -> bool {
        let Some(way) = self.find_way(addr) else {
            return false;
        };
        let set_idx = self.set_of(addr).0;
        let set = &mut self.sets[set_idx];
        set.lru.touch(way);
        set.lines[way].data.set_word(word, value);
        set.lines[way].dirty = true;
        true
    }

    /// Reads a whole resident block without disturbing LRU (used when an
    /// upper level refetches after an error).
    pub fn peek_block(&self, addr: BlockAddr) -> Option<&DataBlock> {
        let way = self.find_way(addr)?;
        Some(&self.sets[self.set_of(addr).0].lines[way].data)
    }

    /// Overwrites a resident block's data in place, marking it dirty
    /// (a full-block writeback arriving from an upper level).
    ///
    /// Returns `false` when the block is not resident.
    pub fn update_block(&mut self, addr: BlockAddr, data: DataBlock) -> bool {
        let Some(way) = self.find_way(addr) else {
            return false;
        };
        let set_idx = self.set_of(addr).0;
        let set = &mut self.sets[set_idx];
        set.lru.touch(way);
        set.lines[way].data = data;
        set.lines[way].dirty = true;
        true
    }

    /// Installs a block, evicting the LRU way if the set is full.
    ///
    /// Returns the evicted valid block, if any. The caller routes dirty
    /// evictions to the next level.
    ///
    /// # Panics
    ///
    /// Panics if the block is already resident (fill implies a prior miss).
    pub fn fill(&mut self, addr: BlockAddr, data: DataBlock, dirty: bool) -> Option<Evicted> {
        assert!(
            self.find_way(addr).is_none(),
            "fill of already-resident block {addr}"
        );
        self.stats.fills += 1;
        let tag = self.geometry.tag(addr);
        let set_idx = self.set_of(addr).0;
        let geometry = self.geometry;
        let set = &mut self.sets[set_idx];

        // Prefer an invalid way; otherwise evict LRU.
        let way = match set.lines.iter().position(|l| !l.valid) {
            Some(w) => w,
            None => set.lru.victim(),
        };
        let line = &mut set.lines[way];
        let evicted = if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted {
                addr: geometry.block_addr_from_parts(line.tag, SetIndex(set_idx)),
                data: std::mem::replace(&mut line.data, DataBlock::zeroed(0)),
                dirty: line.dirty,
            })
        } else {
            None
        };
        *line = Line {
            valid: true,
            dirty,
            tag,
            data,
        };
        set.lru.touch(way);
        evicted
    }

    /// Invalidates a block if resident, returning it (for flush modelling).
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<Evicted> {
        let way = self.find_way(addr)?;
        let set_idx = self.set_of(addr).0;
        let geometry = self.geometry;
        let set = &mut self.sets[set_idx];
        let line = &mut set.lines[way];
        line.valid = false;
        Some(Evicted {
            addr: geometry.block_addr_from_parts(line.tag, SetIndex(set_idx)),
            data: std::mem::replace(
                &mut line.data,
                DataBlock::zeroed(geometry.words_per_block()),
            ),
            dirty: std::mem::take(&mut line.dirty),
        })
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.lines.iter().filter(|l| l.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets, 2 ways, 64B blocks.
        Cache::new(CacheGeometry::new(256, 2, 64), 6)
    }

    fn blk(addr: u64) -> DataBlock {
        DataBlock::pristine(BlockAddr(addr), 8)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let a = BlockAddr(0);
        assert!(!c.lookup(a, AccessKind::Read));
        c.fill(a, blk(0), false);
        assert!(c.lookup(a, AccessKind::Read));
        assert_eq!(c.stats().read_accesses, 2);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn fill_evicts_lru_when_set_full() {
        let mut c = small();
        // Set 0 gets blocks at 0, 128 (2 sets * 64B => stride 128).
        let (a, b, d) = (BlockAddr(0), BlockAddr(128), BlockAddr(256));
        c.fill(a, blk(0), false);
        c.fill(b, blk(128), false);
        c.lookup(a, AccessKind::Read); // a is MRU; b is LRU
        let ev = c.fill(d, blk(256), false).expect("must evict");
        assert_eq!(ev.addr, b);
        assert!(!ev.dirty);
        assert!(c.contains(a));
        assert!(c.contains(d));
        assert!(!c.contains(b));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let (a, b, d) = (BlockAddr(0), BlockAddr(128), BlockAddr(256));
        c.fill(a, blk(0), false);
        c.lookup(a, AccessKind::Write); // dirty a
        c.fill(b, blk(128), false);
        c.lookup(b, AccessKind::Read); // a is LRU and dirty
        let ev = c.fill(d, blk(256), false).unwrap();
        assert_eq!(ev.addr, a);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn words_read_and_write_back() {
        let mut c = small();
        let a = BlockAddr(64); // set 1
        c.fill(a, blk(64), false);
        assert_eq!(c.read_word(a, 3), Some(blk(64).word(3)));
        assert!(c.write_word(a, 3, 0x42));
        assert_eq!(c.read_word(a, 3), Some(0x42));
        assert_eq!(c.read_word(BlockAddr(0), 0), None);
    }

    #[test]
    fn update_block_replaces_data_and_dirties() {
        let mut c = small();
        let a = BlockAddr(0);
        c.fill(a, blk(0), false);
        let mut d = DataBlock::zeroed(8);
        d.set_word(0, 7);
        assert!(c.update_block(a, d.clone()));
        assert_eq!(c.peek_block(a), Some(&d));
        // Evicting it now reports dirty.
        c.fill(BlockAddr(128), blk(128), false);
        c.lookup(BlockAddr(128), AccessKind::Read);
        // Fill once more to push out `a` (LRU).
        c.lookup(BlockAddr(128), AccessKind::Read);
        let ev = c.fill(BlockAddr(256), blk(256), false).unwrap();
        assert_eq!(ev.addr, a);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        let a = BlockAddr(0);
        c.fill(a, blk(0), false);
        let ev = c.invalidate(a).expect("was resident");
        assert_eq!(ev.addr, a);
        assert!(!c.contains(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn resident_blocks_counts_valid_lines() {
        let mut c = small();
        assert_eq!(c.resident_blocks(), 0);
        c.fill(BlockAddr(0), blk(0), false);
        c.fill(BlockAddr(64), blk(64), false);
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_fill_panics() {
        let mut c = small();
        c.fill(BlockAddr(0), blk(0), false);
        c.fill(BlockAddr(0), blk(0), false);
    }
}
