//! Access counters shared by every cache-like component.

/// Hit/miss/traffic counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (load / fetch) lookups.
    pub read_accesses: u64,
    /// Read lookups that hit.
    pub read_hits: u64,
    /// Write (store) lookups.
    pub write_accesses: u64,
    /// Write lookups that hit.
    pub write_hits: u64,
    /// Blocks filled into the cache.
    pub fills: u64,
    /// Valid blocks evicted.
    pub evictions: u64,
    /// Dirty blocks written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total lookups of either kind.
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// Total hits of either kind.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses of either kind.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Overall miss rate in `[0, 1]`; `0` when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Read (load) miss rate in `[0, 1]`; `0` when there were no reads.
    pub fn read_miss_rate(&self) -> f64 {
        if self.read_accesses == 0 {
            0.0
        } else {
            (self.read_accesses - self.read_hits) as f64 / self.read_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.read_miss_rate(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn rates_combine_reads_and_writes() {
        let s = CacheStats {
            read_accesses: 8,
            read_hits: 6,
            write_accesses: 2,
            write_hits: 1,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.hits(), 7);
        assert_eq!(s.misses(), 3);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.read_miss_rate() - 0.25).abs() < 1e-12);
    }
}
