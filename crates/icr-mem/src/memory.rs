//! The last level: a functional main memory with fixed or row-buffer-aware
//! access latency.
//!
//! Only blocks that have ever been written back are stored; everything else
//! reads as its deterministic [`DataBlock::pristine`] pattern, so the
//! simulated machine has a full 64-bit address space at negligible memory
//! cost.
//!
//! Timing comes in two flavours: the paper's flat 100-cycle latency
//! (default, Table 1), or an optional DRAM row-buffer model
//! ([`RowBufferConfig`]) in which an access that hits a bank's open row is
//! substantially cheaper — useful for studying how ICR's extra memory
//! traffic interacts with locality below the caches.

use crate::addr::BlockAddr;
use crate::block::DataBlock;
use std::collections::HashMap;

/// Open-page DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBufferConfig {
    /// Number of banks (power of two).
    pub banks: usize,
    /// Row size in bytes (power of two).
    pub row_bytes: usize,
    /// Latency of an access hitting the bank's open row.
    pub hit_latency: u64,
    /// Latency of an access that must open a new row.
    pub miss_latency: u64,
}

impl RowBufferConfig {
    /// A 2003-flavoured default: 8 banks, 4KB rows, 40/100 cycles.
    pub fn default_2003() -> Self {
        RowBufferConfig {
            banks: 8,
            row_bytes: 4096,
            hit_latency: 40,
            miss_latency: 100,
        }
    }

    /// Validates the shape parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.banks.is_power_of_two() || !self.row_bytes.is_power_of_two() {
            return Err("banks and row size must be powers of two".into());
        }
        if self.hit_latency > self.miss_latency {
            return Err("row hits cannot cost more than row misses".into());
        }
        Ok(())
    }
}

/// Main memory: deterministic pristine contents plus written-back blocks.
#[derive(Debug, Clone)]
pub struct MainMemory {
    words_per_block: usize,
    latency: u64,
    row_buffer: Option<RowBufferConfig>,
    /// Open row per bank (row-buffer mode).
    open_rows: Vec<Option<u64>>,
    row_hits: u64,
    written: HashMap<BlockAddr, DataBlock>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates a memory serving `words_per_block`-word blocks with a fixed
    /// `latency` in cycles (the paper uses 100).
    ///
    /// # Panics
    ///
    /// Panics if `words_per_block == 0`.
    pub fn new(words_per_block: usize, latency: u64) -> Self {
        assert!(words_per_block > 0, "blocks must hold at least one word");
        MainMemory {
            words_per_block,
            latency,
            row_buffer: None,
            open_rows: Vec::new(),
            row_hits: 0,
            written: HashMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Enables the open-page row-buffer timing model.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`RowBufferConfig::validate`].
    pub fn with_row_buffer(mut self, config: RowBufferConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid row-buffer config: {e}"));
        self.open_rows = vec![None; config.banks];
        self.row_buffer = Some(config);
        self
    }

    /// Access latency in cycles for `addr` — flat, or row-buffer-aware
    /// when the model is enabled (this updates the open-row state).
    pub fn access_latency(&mut self, addr: BlockAddr) -> u64 {
        let Some(cfg) = self.row_buffer else {
            return self.latency;
        };
        let row = addr.raw() / cfg.row_bytes as u64;
        let bank = (row as usize) & (cfg.banks - 1);
        let global_row = row / cfg.banks as u64;
        if self.open_rows[bank] == Some(global_row) {
            self.row_hits += 1;
            cfg.hit_latency
        } else {
            self.open_rows[bank] = Some(global_row);
            cfg.miss_latency
        }
    }

    /// Nominal (row-miss / flat) access latency in cycles.
    pub fn latency(&self) -> u64 {
        match self.row_buffer {
            Some(cfg) => cfg.miss_latency,
            None => self.latency,
        }
    }

    /// Row-buffer hits observed (0 unless the model is enabled).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Reads a block, counting one memory access. Returns the data and the
    /// access latency.
    pub fn read_block(&mut self, addr: BlockAddr) -> (DataBlock, u64) {
        self.reads += 1;
        let lat = self.access_latency(addr);
        (self.peek_block(addr), lat)
    }

    /// Reads a block without counting an access (for verification in tests
    /// and for error-recovery bookkeeping).
    pub fn peek_block(&self, addr: BlockAddr) -> DataBlock {
        self.written
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| DataBlock::pristine(addr, self.words_per_block))
    }

    /// Writes a full block back to memory.
    ///
    /// # Panics
    ///
    /// Panics if the block's word count differs from this memory's.
    pub fn write_block(&mut self, addr: BlockAddr, data: DataBlock) {
        assert_eq!(data.len(), self.words_per_block, "block size mismatch");
        self.writes += 1;
        // Writes also stream through the row buffer.
        let _ = self.access_latency(addr);
        self.written.insert(addr, data);
    }

    /// Number of block reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of block writes absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_blocks_read_pristine() {
        let mut m = MainMemory::new(8, 100);
        let a = BlockAddr(0x4000);
        let (data, lat) = m.read_block(a);
        assert_eq!(data, DataBlock::pristine(a, 8));
        assert_eq!(lat, 100);
        assert_eq!(m.reads(), 1);
    }

    #[test]
    fn written_blocks_read_back() {
        let mut m = MainMemory::new(8, 100);
        let a = BlockAddr(0x4000);
        let mut d = DataBlock::zeroed(8);
        d.set_word(3, 0xABCD);
        m.write_block(a, d.clone());
        assert_eq!(m.read_block(a).0, d);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn peek_does_not_count() {
        let m = MainMemory::new(8, 100);
        let _ = m.peek_block(BlockAddr(0));
        assert_eq!(m.reads(), 0);
    }

    #[test]
    fn row_buffer_hits_are_cheaper() {
        let mut m = MainMemory::new(8, 100).with_row_buffer(RowBufferConfig::default_2003());
        // First access opens the row; the second, in the same 4KB row,
        // hits it.
        assert_eq!(m.read_block(BlockAddr(0x0000)).1, 100);
        assert_eq!(m.read_block(BlockAddr(0x0040)).1, 40);
        assert_eq!(m.row_hits(), 1);
        // A different row in the same bank closes it.
        assert_eq!(m.read_block(BlockAddr(0x8000)).1, 100);
        assert_eq!(m.read_block(BlockAddr(0x0080)).1, 100, "row was closed");
    }

    #[test]
    fn different_banks_keep_independent_rows() {
        let mut m = MainMemory::new(8, 100).with_row_buffer(RowBufferConfig::default_2003());
        m.read_block(BlockAddr(0x0000)); // bank 0, row 0
        m.read_block(BlockAddr(0x1000)); // bank 1
        assert_eq!(
            m.read_block(BlockAddr(0x0040)).1,
            40,
            "bank 0 row still open"
        );
    }

    #[test]
    fn flat_mode_reports_configured_latency() {
        let m = MainMemory::new(8, 77);
        assert_eq!(m.latency(), 77);
        assert_eq!(m.row_hits(), 0);
    }

    #[test]
    fn row_config_validation() {
        assert!(RowBufferConfig::default_2003().validate().is_ok());
        let bad = RowBufferConfig {
            banks: 3,
            ..RowBufferConfig::default_2003()
        };
        assert!(bad.validate().is_err());
        let inverted = RowBufferConfig {
            hit_latency: 200,
            ..RowBufferConfig::default_2003()
        };
        assert!(inverted.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn wrong_block_size_panics() {
        let mut m = MainMemory::new(8, 100);
        m.write_block(BlockAddr(0), DataBlock::zeroed(4));
    }
}
