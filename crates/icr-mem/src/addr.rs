//! Addresses and cache geometry: how a byte address splits into
//! tag / set-index / block-offset for a given cache shape.

use std::fmt;

/// A byte address in the simulated machine.
///
/// A newtype keeps byte addresses, block addresses and set indices from
/// being mixed up in the replication logic, where "set (m+10) mod N"
/// arithmetic is easy to get wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// The address of a cache *block* (the byte address with the offset bits
/// cleared). All cache bookkeeping is done at block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The raw (aligned) byte address of the block's first byte.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Index of a set within a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SetIndex(pub usize);

/// Shape of a set-associative cache: total size, associativity, block size.
///
/// ```
/// use icr_mem::CacheGeometry;
///
/// // The paper's dL1: 16KB, 4-way, 64-byte blocks => 64 sets.
/// let g = CacheGeometry::new(16 * 1024, 4, 64);
/// assert_eq!(g.num_sets(), 64);
/// assert_eq!(g.words_per_block(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: usize,
    associativity: usize,
    block_bytes: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `associativity` and `block_bytes` are
    /// powers of two, `block_bytes >= 8`, and the cache holds at least one
    /// set (`size_bytes >= associativity * block_bytes`).
    pub fn new(size_bytes: usize, associativity: usize, block_bytes: usize) -> Self {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(
            associativity.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= 8,
            "block size must be a power of two of at least 8 bytes"
        );
        assert!(
            size_bytes >= associativity * block_bytes,
            "cache must hold at least one set"
        );
        CacheGeometry {
            size_bytes,
            associativity,
            block_bytes,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> usize {
        self.size_bytes
    }

    /// Ways per set.
    pub fn associativity(self) -> usize {
        self.associativity
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(self) -> usize {
        self.block_bytes
    }

    /// Number of sets.
    pub fn num_sets(self) -> usize {
        self.size_bytes / (self.associativity * self.block_bytes)
    }

    /// Number of 64-bit words in one block.
    pub fn words_per_block(self) -> usize {
        self.block_bytes / 8
    }

    /// Clears the offset bits of a byte address, yielding its block address.
    pub fn block_addr(self, addr: Addr) -> BlockAddr {
        BlockAddr(addr.0 & !(self.block_bytes as u64 - 1))
    }

    /// The set a block maps to.
    pub fn set_index(self, block: BlockAddr) -> SetIndex {
        let idx = (block.0 / self.block_bytes as u64) as usize & (self.num_sets() - 1);
        SetIndex(idx)
    }

    /// The tag of a block (the address bits above the set index).
    pub fn tag(self, block: BlockAddr) -> u64 {
        block.0 / self.block_bytes as u64 / self.num_sets() as u64
    }

    /// Index of the 64-bit word within its block that `addr` falls into.
    pub fn word_index(self, addr: Addr) -> usize {
        ((addr.0 as usize) & (self.block_bytes - 1)) / 8
    }

    /// Reassembles a block address from a tag and set index (inverse of
    /// [`tag`](Self::tag) + [`set_index`](Self::set_index)).
    pub fn block_addr_from_parts(self, tag: u64, set: SetIndex) -> BlockAddr {
        BlockAddr((tag * self.num_sets() as u64 + set.0 as u64) * self.block_bytes as u64)
    }

    /// The set at signed distance `k` from `set`, wrapping modulo the number
    /// of sets — the paper's "distance-k" replica placement.
    pub fn set_at_distance(self, set: SetIndex, k: isize) -> SetIndex {
        let n = self.num_sets() as isize;
        SetIndex(((set.0 as isize + k).rem_euclid(n)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl1() -> CacheGeometry {
        CacheGeometry::new(16 * 1024, 4, 64)
    }

    #[test]
    fn paper_dl1_geometry() {
        let g = dl1();
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.words_per_block(), 8);
        assert_eq!(g.associativity(), 4);
    }

    #[test]
    fn paper_l1i_geometry() {
        let g = CacheGeometry::new(16 * 1024, 1, 32);
        assert_eq!(g.num_sets(), 512);
        assert_eq!(g.words_per_block(), 4);
    }

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::new(256 * 1024, 4, 64);
        assert_eq!(g.num_sets(), 1024);
    }

    #[test]
    fn block_addr_clears_offset() {
        let g = dl1();
        assert_eq!(g.block_addr(Addr(0x1234)).raw(), 0x1200);
        assert_eq!(g.block_addr(Addr(0x123F)).raw(), 0x1200);
        assert_eq!(g.block_addr(Addr(0x1240)).raw(), 0x1240);
    }

    #[test]
    fn set_index_wraps_by_num_sets() {
        let g = dl1();
        let b0 = g.block_addr(Addr(0));
        let b_same = g.block_addr(Addr(64 * 64)); // one full stride of sets
        assert_eq!(g.set_index(b0), g.set_index(b_same));
        let b1 = g.block_addr(Addr(64));
        assert_eq!(g.set_index(b1).0, 1);
    }

    #[test]
    fn tag_and_set_roundtrip() {
        let g = dl1();
        for raw in [0u64, 64, 0x1240, 0xFFFF_FFC0, 0xDEAD_BEC0] {
            let b = g.block_addr(Addr(raw));
            let t = g.tag(b);
            let s = g.set_index(b);
            assert_eq!(g.block_addr_from_parts(t, s), b, "raw {raw:#x}");
        }
    }

    #[test]
    fn word_index_walks_the_block() {
        let g = dl1();
        assert_eq!(g.word_index(Addr(0x1200)), 0);
        assert_eq!(g.word_index(Addr(0x1208)), 1);
        assert_eq!(g.word_index(Addr(0x123F)), 7);
    }

    #[test]
    fn distance_k_wraps_modulo_sets() {
        let g = dl1(); // 64 sets
        assert_eq!(g.set_at_distance(SetIndex(0), 32).0, 32); // vertical N/2
        assert_eq!(g.set_at_distance(SetIndex(40), 32).0, 8); // wraps
        assert_eq!(g.set_at_distance(SetIndex(5), 0).0, 5); // horizontal
        assert_eq!(g.set_at_distance(SetIndex(0), -1).0, 63); // negative wraps
        assert_eq!(g.set_at_distance(SetIndex(10), -16).0, 58);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_panics() {
        CacheGeometry::new(1000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn too_small_cache_panics() {
        CacheGeometry::new(64, 4, 64);
    }
}
