//! Cache and memory-hierarchy substrate for the ICR reproduction.
//!
//! The paper evaluates ICR inside a SimpleScalar machine whose memory
//! system is: split 16KB L1s, a unified 256KB 4-way L2 (6-cycle), and
//! 100-cycle main memory (Table 1). This crate provides everything in that
//! picture *except* the data L1:
//!
//! * [`CacheGeometry`]/[`Addr`]/[`BlockAddr`] — address arithmetic,
//!   including the `distance-k` set arithmetic ICR's replica placement
//!   uses;
//! * [`LruQueue`] — recency ordering with the restricted ("LRU among
//!   dead blocks only") victim queries ICR needs;
//! * [`Cache`] — a generic set-associative write-back cache with real data
//!   storage, used for the L2 and instruction L1;
//! * [`MainMemory`] — deterministic-content main memory;
//! * [`WriteBuffer`] — the 8-entry coalescing write buffer of the paper's
//!   write-through comparison (§5.8);
//! * [`MemoryBackend`]/[`InstrCache`] — the assembled hierarchy below and
//!   beside the data L1.
//!
//! Every data-L1 variant (BaseP, BaseECC and the ten ICR schemes) lives in
//! the `icr-core` crate and plugs into [`MemoryBackend`].

pub mod addr;
pub mod block;
pub mod cache;
pub mod hierarchy;
pub mod lru;
pub mod memory;
pub mod stats;
pub mod write_buffer;

pub use addr::{Addr, BlockAddr, CacheGeometry, SetIndex};
pub use block::{splitmix64, DataBlock};
pub use cache::{AccessKind, Cache, Evicted};
pub use hierarchy::{
    HierarchyConfig, HierarchyConfigBuilder, InstrCache, L2ReplicaRegion, MemoryBackend,
    RegionInsert,
};
pub use lru::LruQueue;
pub use memory::{MainMemory, RowBufferConfig};
pub use stats::CacheStats;
pub use write_buffer::WriteBuffer;
