//! Cache-block data storage.

use crate::addr::BlockAddr;

/// The data payload of one cache block: `block_bytes / 8` 64-bit words.
///
/// Lower levels of the hierarchy (L2, DRAM) store plain words; only the
/// ICR-protected dL1 (in `icr-core`) wraps words in check bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataBlock {
    words: Vec<u64>,
}

impl DataBlock {
    /// A block of `words_per_block` zero words.
    pub fn zeroed(words_per_block: usize) -> Self {
        DataBlock {
            words: vec![0; words_per_block],
        }
    }

    /// Builds a block from its words.
    pub fn from_words(words: Vec<u64>) -> Self {
        DataBlock { words }
    }

    /// The deterministic "pristine" contents of an untouched memory block:
    /// a cheap address mix so every block has distinctive, reproducible
    /// data without storing the whole address space.
    pub fn pristine(addr: BlockAddr, words_per_block: usize) -> Self {
        let words = (0..words_per_block as u64)
            .map(|i| splitmix64(addr.raw().wrapping_add(i.wrapping_mul(8))))
            .collect();
        DataBlock { words }
    }

    /// Number of words in the block.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the block holds no words (never the case for blocks made
    /// by this crate's constructors, which require `words_per_block >= 1`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Writes word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_word(&mut self, i: usize, value: u64) {
        self.words[i] = value;
    }

    /// All words, in block order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used to derive pristine
/// memory contents from addresses deterministically.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_is_all_zero() {
        let b = DataBlock::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn pristine_is_deterministic_and_distinctive() {
        let a = DataBlock::pristine(BlockAddr(0x1000), 8);
        let b = DataBlock::pristine(BlockAddr(0x1000), 8);
        let c = DataBlock::pristine(BlockAddr(0x1040), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Words within a block differ from each other.
        assert_ne!(a.word(0), a.word(1));
    }

    #[test]
    fn set_word_roundtrips() {
        let mut b = DataBlock::zeroed(4);
        b.set_word(2, 0xFEED);
        assert_eq!(b.word(2), 0xFEED);
        assert_eq!(b.word(0), 0);
    }

    #[test]
    fn splitmix_nonzero_and_spread() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
