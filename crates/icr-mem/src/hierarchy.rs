//! The memory system below (and beside) the data L1: unified L2 backed by
//! main memory, plus the instruction L1.
//!
//! The data L1 itself is deliberately *not* here — every dL1 variant
//! (BaseP, BaseECC, all ICR schemes) lives in `icr-core` and plugs into
//! [`MemoryBackend::read_block`] / [`MemoryBackend::write_block`].

use crate::addr::{Addr, BlockAddr, CacheGeometry};
use crate::block::DataBlock;
use crate::cache::{AccessKind, Cache};
use crate::memory::MainMemory;
use crate::stats::CacheStats;
use icr_ecc::ProtectedWord;

/// Shapes and latencies of the memory system (Table 1 of the paper).
///
/// `#[non_exhaustive]`: construct one with [`HierarchyConfig::default`]
/// or [`HierarchyConfig::builder`] (fields stay readable and assignable,
/// but new configuration axes can be added without breaking downstream
/// literals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct HierarchyConfig {
    /// L1 instruction cache shape (paper: 16KB, direct-mapped, 32B blocks).
    pub l1i_geometry: CacheGeometry,
    /// L1I hit latency in cycles (paper: 1).
    pub l1i_latency: u64,
    /// Unified L2 shape (paper: 256KB, 4-way, 64B blocks).
    pub l2_geometry: CacheGeometry,
    /// L2 hit latency in cycles (paper: 6).
    pub l2_latency: u64,
    /// Main-memory latency in cycles (paper: 100).
    pub memory_latency: u64,
    /// Optional DRAM open-page model; `None` (default) keeps the paper's
    /// flat latency.
    pub memory_row_buffer: Option<crate::memory::RowBufferConfig>,
    /// Capacity (in dL1-sized blocks) of the replica-aware L2 region
    /// that spill-to-L2 schemes use ([`L2ReplicaRegion`]). The region
    /// is inert — allocated but never touched — under every scheme
    /// whose replica tier is dL1-only. Default 256 blocks (16KB, 1/16
    /// of the paper's L2).
    pub l2_replica_blocks: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i_geometry: CacheGeometry::new(16 * 1024, 1, 32),
            l1i_latency: 1,
            l2_geometry: CacheGeometry::new(256 * 1024, 4, 64),
            l2_latency: 6,
            memory_latency: 100,
            memory_row_buffer: None,
            l2_replica_blocks: 256,
        }
    }
}

impl HierarchyConfig {
    /// A builder over every knob, starting from the paper's Table 1
    /// defaults — mirrors `SimConfig::builder()`.
    pub fn builder() -> HierarchyConfigBuilder {
        HierarchyConfigBuilder {
            config: HierarchyConfig::default(),
        }
    }
}

/// Builds a [`HierarchyConfig`]; obtained from [`HierarchyConfig::builder`].
#[derive(Debug, Clone)]
pub struct HierarchyConfigBuilder {
    config: HierarchyConfig,
}

impl HierarchyConfigBuilder {
    /// L1 instruction cache shape.
    pub fn l1i_geometry(mut self, g: CacheGeometry) -> Self {
        self.config.l1i_geometry = g;
        self
    }

    /// L1I hit latency in cycles.
    pub fn l1i_latency(mut self, cycles: u64) -> Self {
        self.config.l1i_latency = cycles;
        self
    }

    /// Unified L2 shape.
    pub fn l2_geometry(mut self, g: CacheGeometry) -> Self {
        self.config.l2_geometry = g;
        self
    }

    /// L2 hit latency in cycles.
    pub fn l2_latency(mut self, cycles: u64) -> Self {
        self.config.l2_latency = cycles;
        self
    }

    /// Main-memory latency in cycles.
    pub fn memory_latency(mut self, cycles: u64) -> Self {
        self.config.memory_latency = cycles;
        self
    }

    /// DRAM open-page model (default: the paper's flat latency).
    pub fn memory_row_buffer(mut self, rb: crate::memory::RowBufferConfig) -> Self {
        self.config.memory_row_buffer = Some(rb);
        self
    }

    /// Capacity of the replica-aware L2 region, in blocks.
    pub fn l2_replica_blocks(mut self, blocks: usize) -> Self {
        self.config.l2_replica_blocks = blocks;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> HierarchyConfig {
        self.config
    }
}

/// Result of an [`L2ReplicaRegion::insert`]: the slot the new copy
/// landed in, and the entry it displaced when the region was full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInsert {
    /// Slot index of the newly inserted copy.
    pub slot: usize,
    /// `(block, slot)` of the LRU entry displaced to make room, when
    /// the region was at capacity.
    pub evicted: Option<(BlockAddr, usize)>,
}

/// The replica-aware region of the L2: a small, fully-associative store
/// of parity-protected block copies that hosts dL1 replicas which found
/// no dead dL1 block to live in (the spill tier of the scheme
/// descriptor's placement axis).
///
/// Slots are **stable**: a copy keeps its slot index for its whole
/// residency, so slot `i` maps 1:1 onto exposure-ledger line
/// `dl1_slots + i`. Recency is tracked with per-slot stamps; at
/// capacity the lowest-stamped (least-recently *written*) entry is
/// displaced. Inserts and in-place word updates refresh the stamp;
/// reads (miss service, recovery) deliberately do not, so the
/// reference model can mirror the order from the write stream alone.
#[derive(Debug, Clone)]
pub struct L2ReplicaRegion {
    capacity: usize,
    blocks: Vec<Option<BlockAddr>>,
    words: Vec<Vec<ProtectedWord>>,
    stamps: Vec<u64>,
    tick: u64,
}

impl L2ReplicaRegion {
    /// An empty region with `capacity` block slots.
    pub fn new(capacity: usize) -> Self {
        L2ReplicaRegion {
            capacity,
            blocks: vec![None; capacity],
            words: vec![Vec::new(); capacity],
            stamps: vec![0; capacity],
            tick: 0,
        }
    }

    /// Total block slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied block slots.
    pub fn len(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// `true` when no copy is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|b| b.is_none())
    }

    /// The slot holding `block`'s copy, if resident.
    pub fn slot_of(&self, block: BlockAddr) -> Option<usize> {
        self.blocks.iter().position(|&b| b == Some(block))
    }

    /// The block resident in `slot`, if any.
    pub fn block_at(&self, slot: usize) -> Option<BlockAddr> {
        self.blocks[slot]
    }

    /// The stored words of the copy in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is empty.
    pub fn words(&self, slot: usize) -> &[ProtectedWord] {
        assert!(self.blocks[slot].is_some(), "read of empty region slot");
        &self.words[slot]
    }

    /// One stored word of the copy in `slot`.
    pub fn word(&self, slot: usize, word: usize) -> &ProtectedWord {
        &self.words(slot)[word]
    }

    /// Inserts a copy of `block`, reusing the lowest-indexed free slot
    /// or displacing the least-recently-written entry at capacity.
    /// `block` must not already be resident.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate insert or a zero-capacity region.
    pub fn insert(&mut self, block: BlockAddr, words: Vec<ProtectedWord>) -> RegionInsert {
        assert!(self.capacity > 0, "insert into a zero-capacity region");
        assert!(
            self.slot_of(block).is_none(),
            "duplicate region insert of {block}"
        );
        let (slot, evicted) = match self.blocks.iter().position(|b| b.is_none()) {
            Some(free) => (free, None),
            None => {
                let victim = (0..self.capacity)
                    .min_by_key(|&i| self.stamps[i])
                    .expect("capacity > 0");
                (victim, Some((self.blocks[victim].unwrap(), victim)))
            }
        };
        self.blocks[slot] = Some(block);
        self.words[slot] = words;
        self.tick += 1;
        self.stamps[slot] = self.tick;
        RegionInsert { slot, evicted }
    }

    /// Overwrites one word of the copy in `slot` and refreshes its
    /// recency stamp (stores keep spilled copies coherent in place).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is empty.
    pub fn update_word(&mut self, slot: usize, word: usize, value: ProtectedWord) {
        assert!(self.blocks[slot].is_some(), "update of empty region slot");
        self.words[slot][word] = value;
        self.tick += 1;
        self.stamps[slot] = self.tick;
    }

    /// Drops `block`'s copy, returning the slot it occupied.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<usize> {
        let slot = self.slot_of(block)?;
        self.blocks[slot] = None;
        self.words[slot] = Vec::new();
        Some(slot)
    }

    /// Occupied slots as `(slot, block)` pairs, in slot order — the
    /// fault injector's sample space over the region.
    pub fn occupied(&self) -> Vec<(usize, BlockAddr)> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|block| (i, block)))
            .collect()
    }

    /// Resident copies as `(block, decoded data words)` in recency
    /// order, least-recently-written first — the export the lockstep
    /// reference model diffs its naive spill ledger against.
    pub fn export_lru_order(&self) -> Vec<(u64, Vec<u64>)> {
        let mut occ: Vec<usize> = (0..self.capacity)
            .filter(|&i| self.blocks[i].is_some())
            .collect();
        occ.sort_by_key(|&i| self.stamps[i]);
        occ.into_iter()
            .map(|i| {
                (
                    self.blocks[i].unwrap().raw(),
                    self.words[i].iter().map(|w| w.data()).collect(),
                )
            })
            .collect()
    }

    /// Flips a data bit in a stored word (transient-fault injection).
    /// Returns `false` if the slot is empty.
    pub fn flip_data_bit(&mut self, slot: usize, word: usize, bit: u32) -> bool {
        if self.blocks[slot].is_none() {
            return false;
        }
        self.words[slot][word].flip_data_bit(bit);
        true
    }

    /// Flips a check bit in a stored word (fault in the parity bit).
    /// Returns `false` if the slot is empty.
    pub fn flip_check_bit(&mut self, slot: usize, word: usize, bit: u32) -> bool {
        if self.blocks[slot].is_none() {
            return false;
        }
        self.words[slot][word].flip_check_bit(bit);
        true
    }
}

/// Unified L2 + main memory: everything below the L1s.
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    l2: Cache,
    memory: MainMemory,
    replica_region: L2ReplicaRegion,
}

impl MemoryBackend {
    /// Builds the backend from a config.
    pub fn new(config: &HierarchyConfig) -> Self {
        let mut memory =
            MainMemory::new(config.l2_geometry.words_per_block(), config.memory_latency);
        if let Some(rb) = config.memory_row_buffer {
            memory = memory.with_row_buffer(rb);
        }
        MemoryBackend {
            l2: Cache::new(config.l2_geometry, config.l2_latency),
            memory,
            replica_region: L2ReplicaRegion::new(config.l2_replica_blocks),
        }
    }

    /// The replica-aware L2 region (the spill tier).
    pub fn replica_region(&self) -> &L2ReplicaRegion {
        &self.replica_region
    }

    /// Mutable access to the replica-aware L2 region.
    pub fn replica_region_mut(&mut self) -> &mut L2ReplicaRegion {
        &mut self.replica_region
    }

    /// Serves an L1 read miss: returns the block's data and the latency in
    /// cycles (L2 hit latency, plus memory latency on an L2 miss).
    pub fn read_block(&mut self, addr: BlockAddr) -> (DataBlock, u64) {
        if self.l2.lookup(addr, AccessKind::Read) {
            let data = self
                .l2
                .peek_block(addr)
                .expect("hit implies resident")
                .clone();
            (data, self.l2.hit_latency())
        } else {
            let (data, mem_lat) = self.memory.read_block(addr);
            if let Some(ev) = self.l2.fill(addr, data.clone(), false) {
                if ev.dirty {
                    self.memory.write_block(ev.addr, ev.data);
                }
            }
            (data, self.l2.hit_latency() + mem_lat)
        }
    }

    /// Absorbs a dirty block written back (or written through) from an L1.
    /// Returns the latency in cycles. Full-block writes allocate in L2
    /// without fetching from memory.
    pub fn write_block(&mut self, addr: BlockAddr, data: DataBlock) -> u64 {
        if self.l2.lookup(addr, AccessKind::Write) {
            self.l2.update_block(addr, data);
        } else if let Some(ev) = self.l2.fill(addr, data, true) {
            if ev.dirty {
                self.memory.write_block(ev.addr, ev.data);
            }
        }
        self.l2.hit_latency()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// L2 hit latency in cycles.
    pub fn l2_latency(&self) -> u64 {
        self.l2.hit_latency()
    }

    /// Memory latency in cycles.
    pub fn memory_latency(&self) -> u64 {
        self.memory.latency()
    }

    /// Total block reads served by main memory.
    pub fn memory_reads(&self) -> u64 {
        self.memory.reads()
    }

    /// Total block writes absorbed by main memory.
    pub fn memory_writes(&self) -> u64 {
        self.memory.writes()
    }

    /// The architecturally-correct contents of a block, for verification:
    /// L2 copy if resident (it may hold dirty data newer than memory),
    /// else memory contents.
    pub fn golden_block(&self, addr: BlockAddr) -> DataBlock {
        match self.l2.peek_block(addr) {
            Some(b) => b.clone(),
            None => self.memory.peek_block(addr),
        }
    }
}

/// The instruction L1 plus its path to the backend.
#[derive(Debug, Clone)]
pub struct InstrCache {
    cache: Cache,
    /// The block the previous fetch landed in. Straight-line code fetches
    /// the same 32B block several instructions in a row; when the memo
    /// matches, the line is resident and — because fetches are this
    /// cache's only accesses — already MRU in its set, so the tag scan
    /// and LRU touch can both be skipped without changing any state.
    last_block: Option<BlockAddr>,
}

impl InstrCache {
    /// Builds the instruction cache from a config.
    pub fn new(config: &HierarchyConfig) -> Self {
        InstrCache {
            cache: Cache::new(config.l1i_geometry, config.l1i_latency),
            last_block: None,
        }
    }

    /// Fetches the instruction at `pc`; returns the fetch latency.
    ///
    /// Instruction lines are read-only, so misses never write back. Note
    /// the L1I and L2 have different block sizes in the paper's config
    /// (32B vs 64B); the fill requests the L2-sized block and installs the
    /// 32B half containing `pc`.
    pub fn fetch(&mut self, pc: Addr, backend: &mut MemoryBackend) -> u64 {
        let g = self.cache.geometry();
        let block = g.block_addr(pc);
        if self.last_block == Some(block) {
            self.cache.count_mru_read_hit();
            return self.cache.hit_latency();
        }
        self.last_block = Some(block);
        if self.cache.lookup(block, AccessKind::Read) {
            self.cache.hit_latency()
        } else {
            let l2_block = backend.read_block(BlockAddr(
                pc.raw() & !(backend.l2.geometry().block_bytes() as u64 - 1),
            ));
            // Extract this cache's block-worth of words from the L2 block.
            let words = g.words_per_block();
            let offset_words =
                ((block.raw() as usize) & (backend.l2.geometry().block_bytes() - 1)) / 8;
            let slice: Vec<u64> = (0..words)
                .map(|i| l2_block.0.word(offset_words + i))
                .collect();
            self.cache.fill(block, DataBlock::from_words(slice), false);
            self.cache.hit_latency() + l2_block.1
        }
    }

    /// L1I statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icr_ecc::Protection;

    fn pwords(values: &[u64]) -> Vec<ProtectedWord> {
        values
            .iter()
            .map(|&v| ProtectedWord::encode(v, Protection::Parity))
            .collect()
    }

    #[test]
    fn region_insert_fills_lowest_free_slot_then_evicts_lru() {
        let mut r = L2ReplicaRegion::new(2);
        assert!(r.is_empty());
        let a = r.insert(BlockAddr(0x100), pwords(&[1, 2]));
        assert_eq!((a.slot, a.evicted), (0, None));
        let b = r.insert(BlockAddr(0x200), pwords(&[3, 4]));
        assert_eq!((b.slot, b.evicted), (1, None));
        assert_eq!(r.len(), 2);
        // Touch slot 0 so slot 1 becomes least-recently-written.
        r.update_word(0, 1, ProtectedWord::encode(9, Protection::Parity));
        let c = r.insert(BlockAddr(0x300), pwords(&[5, 6]));
        assert_eq!(c.slot, 1);
        assert_eq!(c.evicted, Some((BlockAddr(0x200), 1)));
        assert_eq!(r.slot_of(BlockAddr(0x200)), None);
        assert_eq!(r.word(0, 1).data(), 9);
        assert_eq!(r.word(1, 0).data(), 5);
    }

    #[test]
    fn region_invalidate_frees_the_slot_for_reuse() {
        let mut r = L2ReplicaRegion::new(2);
        r.insert(BlockAddr(0x100), pwords(&[1]));
        r.insert(BlockAddr(0x200), pwords(&[2]));
        assert_eq!(r.invalidate(BlockAddr(0x100)), Some(0));
        assert_eq!(r.invalidate(BlockAddr(0x100)), None);
        assert_eq!(r.len(), 1);
        // The freed slot is reused before any eviction happens.
        let ins = r.insert(BlockAddr(0x300), pwords(&[3]));
        assert_eq!((ins.slot, ins.evicted), (0, None));
        assert_eq!(
            r.occupied(),
            vec![(0, BlockAddr(0x300)), (1, BlockAddr(0x200))]
        );
    }

    #[test]
    fn region_export_orders_by_write_recency_not_slot() {
        let mut r = L2ReplicaRegion::new(3);
        r.insert(BlockAddr(0x100), pwords(&[1]));
        r.insert(BlockAddr(0x200), pwords(&[2]));
        r.insert(BlockAddr(0x300), pwords(&[3]));
        // Rewrite the oldest: it becomes most-recently-written.
        r.update_word(0, 0, ProtectedWord::encode(11, Protection::Parity));
        let export = r.export_lru_order();
        assert_eq!(
            export,
            vec![(0x200, vec![2]), (0x300, vec![3]), (0x100, vec![11]),]
        );
    }

    #[test]
    fn region_bit_flips_only_touch_occupied_slots() {
        let mut r = L2ReplicaRegion::new(2);
        r.insert(BlockAddr(0x100), pwords(&[0]));
        assert!(r.flip_data_bit(0, 0, 3));
        assert_eq!(r.word(0, 0).data(), 8);
        assert!(r.flip_check_bit(0, 0, 0));
        assert!(!r.flip_data_bit(1, 0, 0));
        assert!(!r.flip_check_bit(1, 0, 0));
    }

    #[test]
    fn default_config_matches_table1() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i_geometry.size_bytes(), 16 * 1024);
        assert_eq!(c.l1i_geometry.associativity(), 1);
        assert_eq!(c.l1i_geometry.block_bytes(), 32);
        assert_eq!(c.l2_geometry.size_bytes(), 256 * 1024);
        assert_eq!(c.l2_geometry.associativity(), 4);
        assert_eq!(c.l2_geometry.block_bytes(), 64);
        assert_eq!(c.l2_latency, 6);
        assert_eq!(c.memory_latency, 100);
    }

    #[test]
    fn l2_miss_costs_memory_latency() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x1000);
        let (d1, lat1) = b.read_block(a);
        assert_eq!(lat1, 106);
        let (d2, lat2) = b.read_block(a);
        assert_eq!(lat2, 6);
        assert_eq!(d1, d2);
        assert_eq!(b.memory_reads(), 1);
    }

    #[test]
    fn writeback_lands_in_l2_then_reads_back() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x2000);
        let mut d = DataBlock::zeroed(8);
        d.set_word(0, 0xAA);
        let lat = b.write_block(a, d.clone());
        assert_eq!(lat, 6);
        let (read, _) = b.read_block(a);
        assert_eq!(read, d);
    }

    #[test]
    fn golden_block_prefers_l2_over_memory() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x3000);
        let mut d = DataBlock::zeroed(8);
        d.set_word(1, 0xBB);
        b.write_block(a, d.clone());
        assert_eq!(b.golden_block(a), d);
        // An untouched address reads pristine.
        let other = BlockAddr(0x9000);
        assert_eq!(b.golden_block(other), DataBlock::pristine(other, 8));
    }

    #[test]
    fn dirty_l2_eviction_reaches_memory() {
        // Tiny L2 so evictions are easy to force: 2 sets x 1 way x 64B.
        let cfg = HierarchyConfig {
            l2_geometry: CacheGeometry::new(128, 1, 64),
            ..Default::default()
        };
        let mut b = MemoryBackend::new(&cfg);
        let a = BlockAddr(0);
        let mut d = DataBlock::zeroed(8);
        d.set_word(0, 0xCC);
        b.write_block(a, d.clone()); // dirty in L2
                                     // Conflict: same set (stride = 128 bytes), evicts `a` to memory.
        let (_, _) = b.read_block(BlockAddr(128));
        assert_eq!(b.memory_writes(), 1);
        assert_eq!(b.golden_block(a), d);
    }

    #[test]
    fn icache_hits_after_first_fetch() {
        let cfg = HierarchyConfig::default();
        let mut b = MemoryBackend::new(&cfg);
        let mut ic = InstrCache::new(&cfg);
        let pc = Addr(0x400_0040);
        let lat1 = ic.fetch(pc, &mut b);
        assert_eq!(lat1, 1 + 106);
        let lat2 = ic.fetch(pc, &mut b);
        assert_eq!(lat2, 1);
        // A pc in the same 32B block also hits.
        assert_eq!(ic.fetch(Addr(0x400_005C), &mut b), 1);
        assert_eq!(ic.stats().read_hits, 2);
    }

    #[test]
    fn icache_fill_extracts_correct_half_of_l2_block() {
        let cfg = HierarchyConfig::default();
        let mut b = MemoryBackend::new(&cfg);
        let mut ic = InstrCache::new(&cfg);
        // Fetch an address in the *upper* 32B half of a 64B L2 block.
        let pc = Addr(0x5020);
        ic.fetch(pc, &mut b);
        // The icache block at 0x5020 contains words 4..8 of L2 block 0x5000.
        let golden = DataBlock::pristine(BlockAddr(0x5000), 8);
        let ic_block = ic.cache.peek_block(BlockAddr(0x5020)).unwrap();
        assert_eq!(ic_block.word(0), golden.word(4));
        assert_eq!(ic_block.word(3), golden.word(7));
    }
}
