//! The memory system below (and beside) the data L1: unified L2 backed by
//! main memory, plus the instruction L1.
//!
//! The data L1 itself is deliberately *not* here — every dL1 variant
//! (BaseP, BaseECC, all ICR schemes) lives in `icr-core` and plugs into
//! [`MemoryBackend::read_block`] / [`MemoryBackend::write_block`].

use crate::addr::{Addr, BlockAddr, CacheGeometry};
use crate::block::DataBlock;
use crate::cache::{AccessKind, Cache};
use crate::memory::MainMemory;
use crate::stats::CacheStats;

/// Shapes and latencies of the memory system (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache shape (paper: 16KB, direct-mapped, 32B blocks).
    pub l1i_geometry: CacheGeometry,
    /// L1I hit latency in cycles (paper: 1).
    pub l1i_latency: u64,
    /// Unified L2 shape (paper: 256KB, 4-way, 64B blocks).
    pub l2_geometry: CacheGeometry,
    /// L2 hit latency in cycles (paper: 6).
    pub l2_latency: u64,
    /// Main-memory latency in cycles (paper: 100).
    pub memory_latency: u64,
    /// Optional DRAM open-page model; `None` (default) keeps the paper's
    /// flat latency.
    pub memory_row_buffer: Option<crate::memory::RowBufferConfig>,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i_geometry: CacheGeometry::new(16 * 1024, 1, 32),
            l1i_latency: 1,
            l2_geometry: CacheGeometry::new(256 * 1024, 4, 64),
            l2_latency: 6,
            memory_latency: 100,
            memory_row_buffer: None,
        }
    }
}

/// Unified L2 + main memory: everything below the L1s.
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    l2: Cache,
    memory: MainMemory,
}

impl MemoryBackend {
    /// Builds the backend from a config.
    pub fn new(config: &HierarchyConfig) -> Self {
        let mut memory =
            MainMemory::new(config.l2_geometry.words_per_block(), config.memory_latency);
        if let Some(rb) = config.memory_row_buffer {
            memory = memory.with_row_buffer(rb);
        }
        MemoryBackend {
            l2: Cache::new(config.l2_geometry, config.l2_latency),
            memory,
        }
    }

    /// Serves an L1 read miss: returns the block's data and the latency in
    /// cycles (L2 hit latency, plus memory latency on an L2 miss).
    pub fn read_block(&mut self, addr: BlockAddr) -> (DataBlock, u64) {
        if self.l2.lookup(addr, AccessKind::Read) {
            let data = self
                .l2
                .peek_block(addr)
                .expect("hit implies resident")
                .clone();
            (data, self.l2.hit_latency())
        } else {
            let (data, mem_lat) = self.memory.read_block(addr);
            if let Some(ev) = self.l2.fill(addr, data.clone(), false) {
                if ev.dirty {
                    self.memory.write_block(ev.addr, ev.data);
                }
            }
            (data, self.l2.hit_latency() + mem_lat)
        }
    }

    /// Absorbs a dirty block written back (or written through) from an L1.
    /// Returns the latency in cycles. Full-block writes allocate in L2
    /// without fetching from memory.
    pub fn write_block(&mut self, addr: BlockAddr, data: DataBlock) -> u64 {
        if self.l2.lookup(addr, AccessKind::Write) {
            self.l2.update_block(addr, data);
        } else if let Some(ev) = self.l2.fill(addr, data, true) {
            if ev.dirty {
                self.memory.write_block(ev.addr, ev.data);
            }
        }
        self.l2.hit_latency()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// L2 hit latency in cycles.
    pub fn l2_latency(&self) -> u64 {
        self.l2.hit_latency()
    }

    /// Memory latency in cycles.
    pub fn memory_latency(&self) -> u64 {
        self.memory.latency()
    }

    /// Total block reads served by main memory.
    pub fn memory_reads(&self) -> u64 {
        self.memory.reads()
    }

    /// Total block writes absorbed by main memory.
    pub fn memory_writes(&self) -> u64 {
        self.memory.writes()
    }

    /// The architecturally-correct contents of a block, for verification:
    /// L2 copy if resident (it may hold dirty data newer than memory),
    /// else memory contents.
    pub fn golden_block(&self, addr: BlockAddr) -> DataBlock {
        match self.l2.peek_block(addr) {
            Some(b) => b.clone(),
            None => self.memory.peek_block(addr),
        }
    }
}

/// The instruction L1 plus its path to the backend.
#[derive(Debug, Clone)]
pub struct InstrCache {
    cache: Cache,
    /// The block the previous fetch landed in. Straight-line code fetches
    /// the same 32B block several instructions in a row; when the memo
    /// matches, the line is resident and — because fetches are this
    /// cache's only accesses — already MRU in its set, so the tag scan
    /// and LRU touch can both be skipped without changing any state.
    last_block: Option<BlockAddr>,
}

impl InstrCache {
    /// Builds the instruction cache from a config.
    pub fn new(config: &HierarchyConfig) -> Self {
        InstrCache {
            cache: Cache::new(config.l1i_geometry, config.l1i_latency),
            last_block: None,
        }
    }

    /// Fetches the instruction at `pc`; returns the fetch latency.
    ///
    /// Instruction lines are read-only, so misses never write back. Note
    /// the L1I and L2 have different block sizes in the paper's config
    /// (32B vs 64B); the fill requests the L2-sized block and installs the
    /// 32B half containing `pc`.
    pub fn fetch(&mut self, pc: Addr, backend: &mut MemoryBackend) -> u64 {
        let g = self.cache.geometry();
        let block = g.block_addr(pc);
        if self.last_block == Some(block) {
            self.cache.count_mru_read_hit();
            return self.cache.hit_latency();
        }
        self.last_block = Some(block);
        if self.cache.lookup(block, AccessKind::Read) {
            self.cache.hit_latency()
        } else {
            let l2_block = backend.read_block(BlockAddr(
                pc.raw() & !(backend.l2.geometry().block_bytes() as u64 - 1),
            ));
            // Extract this cache's block-worth of words from the L2 block.
            let words = g.words_per_block();
            let offset_words =
                ((block.raw() as usize) & (backend.l2.geometry().block_bytes() - 1)) / 8;
            let slice: Vec<u64> = (0..words)
                .map(|i| l2_block.0.word(offset_words + i))
                .collect();
            self.cache.fill(block, DataBlock::from_words(slice), false);
            self.cache.hit_latency() + l2_block.1
        }
    }

    /// L1I statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table1() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i_geometry.size_bytes(), 16 * 1024);
        assert_eq!(c.l1i_geometry.associativity(), 1);
        assert_eq!(c.l1i_geometry.block_bytes(), 32);
        assert_eq!(c.l2_geometry.size_bytes(), 256 * 1024);
        assert_eq!(c.l2_geometry.associativity(), 4);
        assert_eq!(c.l2_geometry.block_bytes(), 64);
        assert_eq!(c.l2_latency, 6);
        assert_eq!(c.memory_latency, 100);
    }

    #[test]
    fn l2_miss_costs_memory_latency() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x1000);
        let (d1, lat1) = b.read_block(a);
        assert_eq!(lat1, 106);
        let (d2, lat2) = b.read_block(a);
        assert_eq!(lat2, 6);
        assert_eq!(d1, d2);
        assert_eq!(b.memory_reads(), 1);
    }

    #[test]
    fn writeback_lands_in_l2_then_reads_back() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x2000);
        let mut d = DataBlock::zeroed(8);
        d.set_word(0, 0xAA);
        let lat = b.write_block(a, d.clone());
        assert_eq!(lat, 6);
        let (read, _) = b.read_block(a);
        assert_eq!(read, d);
    }

    #[test]
    fn golden_block_prefers_l2_over_memory() {
        let mut b = MemoryBackend::new(&HierarchyConfig::default());
        let a = BlockAddr(0x3000);
        let mut d = DataBlock::zeroed(8);
        d.set_word(1, 0xBB);
        b.write_block(a, d.clone());
        assert_eq!(b.golden_block(a), d);
        // An untouched address reads pristine.
        let other = BlockAddr(0x9000);
        assert_eq!(b.golden_block(other), DataBlock::pristine(other, 8));
    }

    #[test]
    fn dirty_l2_eviction_reaches_memory() {
        // Tiny L2 so evictions are easy to force: 2 sets x 1 way x 64B.
        let cfg = HierarchyConfig {
            l2_geometry: CacheGeometry::new(128, 1, 64),
            ..Default::default()
        };
        let mut b = MemoryBackend::new(&cfg);
        let a = BlockAddr(0);
        let mut d = DataBlock::zeroed(8);
        d.set_word(0, 0xCC);
        b.write_block(a, d.clone()); // dirty in L2
                                     // Conflict: same set (stride = 128 bytes), evicts `a` to memory.
        let (_, _) = b.read_block(BlockAddr(128));
        assert_eq!(b.memory_writes(), 1);
        assert_eq!(b.golden_block(a), d);
    }

    #[test]
    fn icache_hits_after_first_fetch() {
        let cfg = HierarchyConfig::default();
        let mut b = MemoryBackend::new(&cfg);
        let mut ic = InstrCache::new(&cfg);
        let pc = Addr(0x400_0040);
        let lat1 = ic.fetch(pc, &mut b);
        assert_eq!(lat1, 1 + 106);
        let lat2 = ic.fetch(pc, &mut b);
        assert_eq!(lat2, 1);
        // A pc in the same 32B block also hits.
        assert_eq!(ic.fetch(Addr(0x400_005C), &mut b), 1);
        assert_eq!(ic.stats().read_hits, 2);
    }

    #[test]
    fn icache_fill_extracts_correct_half_of_l2_block() {
        let cfg = HierarchyConfig::default();
        let mut b = MemoryBackend::new(&cfg);
        let mut ic = InstrCache::new(&cfg);
        // Fetch an address in the *upper* 32B half of a 64B L2 block.
        let pc = Addr(0x5020);
        ic.fetch(pc, &mut b);
        // The icache block at 0x5020 contains words 4..8 of L2 block 0x5000.
        let golden = DataBlock::pristine(BlockAddr(0x5000), 8);
        let ic_block = ic.cache.peek_block(BlockAddr(0x5020)).unwrap();
        assert_eq!(ic_block.word(0), golden.word(4));
        assert_eq!(ic_block.word(3), golden.word(7));
    }
}
