//! Least-recently-used ordering within one cache set.
//!
//! Beyond plain LRU victim selection, ICR's replica placement needs
//! *restricted* LRU — "LRU only amongst the dead blocks", "LRU amongst
//! replicas" — so [`LruQueue::victim_among`] selects the LRU way from an
//! eligibility mask.

/// Recency tracking for the ways of a single set.
///
/// Ways are ordered from most- to least-recently used; `touch` moves a way
/// to the MRU end. For the small associativities of real L1/L2 caches
/// (≤ 16) a vector beats any linked structure.
///
/// ```
/// use icr_mem::LruQueue;
///
/// let mut q = LruQueue::new(4);
/// q.touch(0); q.touch(1); q.touch(2); q.touch(3);
/// assert_eq!(q.victim(), 0);            // 0 is now least recent
/// q.touch(0);
/// assert_eq!(q.victim(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruQueue {
    /// Way indices, most-recently-used first.
    order: Vec<usize>,
}

impl LruQueue {
    /// A queue over `ways` ways; initially way 0 is MRU and way `ways-1`
    /// is LRU (so an empty set fills ways in reverse index order, matching
    /// hardware that fills invalid ways first by index).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a set must have at least one way");
        LruQueue {
            order: (0..ways).collect(),
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// Marks `way` as most-recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range");
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    /// Marks `way` as *least*-recently used — used when a block is demoted
    /// (e.g. a replica that should be first in line for eviction).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn demote(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way out of range");
        let w = self.order.remove(pos);
        self.order.push(w);
    }

    /// The globally least-recently-used way.
    pub fn victim(&self) -> usize {
        *self.order.last().expect("non-empty by construction")
    }

    /// The least-recently-used way among those where `eligible[way]` is
    /// `true`, or `None` if no way is eligible.
    ///
    /// # Panics
    ///
    /// Panics if `eligible.len()` differs from the number of ways.
    pub fn victim_among(&self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(eligible.len(), self.order.len(), "mask length mismatch");
        self.order.iter().rev().copied().find(|&w| eligible[w])
    }

    /// Ways from most- to least-recently used (for inspection/tests).
    pub fn mru_to_lru(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_fills_high_ways_first() {
        let q = LruQueue::new(4);
        assert_eq!(q.victim(), 3);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut q = LruQueue::new(4);
        q.touch(3);
        assert_eq!(q.mru_to_lru(), &[3, 0, 1, 2]);
        assert_eq!(q.victim(), 2);
    }

    #[test]
    fn repeated_touch_is_idempotent() {
        let mut q = LruQueue::new(4);
        q.touch(1);
        q.touch(1);
        assert_eq!(q.mru_to_lru(), &[1, 0, 2, 3]);
    }

    #[test]
    fn demote_moves_to_lru() {
        let mut q = LruQueue::new(4);
        q.touch(2); // [2,0,1,3]
        q.demote(2);
        assert_eq!(q.victim(), 2);
    }

    #[test]
    fn victim_among_respects_mask() {
        let mut q = LruQueue::new(4);
        // Make order [3,2,1,0]: LRU is 0.
        q.touch(1);
        q.touch(2);
        q.touch(3);
        assert_eq!(q.victim(), 0);
        // But only ways 2 and 3 are eligible: pick 2 (less recent than 3).
        assert_eq!(q.victim_among(&[false, false, true, true]), Some(2));
        assert_eq!(q.victim_among(&[false; 4]), None);
        assert_eq!(q.victim_among(&[true; 4]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        LruQueue::new(0);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn wrong_mask_length_panics() {
        LruQueue::new(4).victim_among(&[true; 3]);
    }
}
