//! Lockstep reference model and invariant checks for the ICR dL1.
//!
//! The simulator's hot paths are heavily optimised: associative lookup
//! over packed lines, incremental statistics, a memoizing execution
//! engine, lazy decay counters. This crate is the opposite on purpose —
//! a *deliberately naive* model of the paper's §3 semantics that an
//! auditor can read top to bottom:
//!
//! * associative lookup by **linear scan** over every way,
//! * the replica map as a plain **`HashMap`** ledger, cross-checked
//!   against a fresh scan on every diff,
//! * protection state as an **enum** per line, recomputed from first
//!   principles,
//! * decay counters recomputed from the last-access cycle each time.
//!
//! [`RefModel`] consumes the same access stream as the real `DataL1`
//! and [`RefModel::check`] diffs the full observable state after every
//! access: tags, dirty bits, protection, replica pairing, recency order,
//! per-line decay counters, and the statistics counters — plus the
//! conservation invariants (hits + misses = accesses, stats monotone,
//! replicas always paired to a live primary a legal distance-k away).
//!
//! The crate is **dependency-free**, including on the rest of the
//! workspace: it must share no code — and therefore no bugs — with what
//! it audits. The simulator side translates its state into the plain
//! [`RealState`] structs defined here.
//!
//! Two more free-standing checks round out the audit surface:
//! [`tally_conserved`] (fault-campaign outcome conservation: injected =
//! recovered + masked + lost + silent) and [`json_complete`] (a
//! truncated report file is not a well-formed JSON document).

mod model;
mod write_buffer;

pub use model::{
    ref_decay_counter, ref_is_dead, Counters, RealLine, RealSetExport, RealSets, RealState,
    RefConfig, RefLine, RefModel, RefProtection, RefVictim, RefWriteBufferConfig,
};
pub use write_buffer::{RealWriteBuffer, RefWriteBuffer};

/// Checks the outcome-conservation invariant of one fault-campaign
/// tally: every delivered fault ends in exactly one of the four
/// terminal classes, so
///
/// ```text
/// injected  =  total - not_injected  =  recovered + masked + lost + silent
/// ```
///
/// where `lost` is the detected-but-unrecoverable count. A violation
/// means double- or under-counted trials — exactly the class of bug a
/// raw `injected - lost` subtraction would later turn into a wrapping
/// panic inside a Wilson interval.
///
/// # Errors
///
/// Returns a description of the first violated equation.
pub fn tally_conserved(
    total: u64,
    not_injected: u64,
    recovered: u64,
    masked: u64,
    lost: u64,
    silent: u64,
) -> Result<(), String> {
    if not_injected > total {
        return Err(format!(
            "tally: not_injected {not_injected} exceeds total {total}"
        ));
    }
    let injected = total - not_injected;
    let accounted = recovered + masked + lost + silent;
    if accounted != injected {
        return Err(format!(
            "tally: injected {injected} != recovered {recovered} + masked {masked} \
             + lost {lost} + silent {silent} (= {accounted})"
        ));
    }
    if lost + silent > injected {
        return Err(format!(
            "tally: lost {lost} + silent {silent} exceeds injected {injected}"
        ));
    }
    Ok(())
}

/// `true` when `s` is one complete JSON value (object, array, string,
/// or bare literal) with balanced structure — the well-formedness a
/// *truncated* report file always fails.
///
/// This is a linear scan, not a parser: it tracks string/escape state
/// and brace/bracket depth. It accepts every document the workspace's
/// `to_json` emitters produce and rejects any strict prefix of them,
/// which is all the atomic-write audit needs.
pub fn json_complete(s: &str) -> bool {
    let t = s.trim();
    if t.is_empty() {
        return false;
    }
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in t.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    !in_string && depth == 0 && !t.ends_with(',') && !t.ends_with(':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_conservation_accepts_balanced_tallies() {
        // 10 trials: 2 undelivered, 5 recovered, 1 masked, 1 lost, 1 silent.
        assert!(tally_conserved(10, 2, 5, 1, 1, 1).is_ok());
        assert!(tally_conserved(0, 0, 0, 0, 0, 0).is_ok());
    }

    #[test]
    fn tally_conservation_rejects_leaks() {
        // One delivered trial vanished from the terminal classes.
        let err = tally_conserved(10, 2, 4, 1, 1, 1).unwrap_err();
        assert!(err.contains("injected 8"), "{err}");
        // More losses than delivered faults — the Wilson underflow shape.
        assert!(tally_conserved(4, 2, 0, 0, 3, 2).is_err());
        assert!(tally_conserved(3, 5, 0, 0, 0, 0).is_err());
    }

    #[test]
    fn json_complete_accepts_whole_documents() {
        assert!(json_complete("{}"));
        assert!(json_complete("{\"a\": [1, 2, {\"b\": \"x}y\"}]}\n"));
        assert!(json_complete("[\n{\"a\": 1},\n{\"b\": 2}\n]"));
        assert!(json_complete("null"));
        assert!(json_complete("\"a string with \\\" and {\""));
    }

    #[test]
    fn json_complete_rejects_truncations() {
        let doc = "{\"cells\": [{\"app\": \"gzip\", \"v\": 1.5}, {\"app\": \"gcc\", \"v\": 2.0}]}";
        assert!(json_complete(doc));
        for cut in 1..doc.len() {
            assert!(
                !json_complete(&doc[..cut]),
                "prefix of length {cut} accepted: {}",
                &doc[..cut]
            );
        }
        assert!(!json_complete(""));
        assert!(!json_complete("   "));
    }
}
