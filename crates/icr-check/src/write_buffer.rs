//! Reference model of the §5.8 coalescing write buffer.
//!
//! Mirrors the real buffer's push semantics with `Vec` scans instead of a
//! deque, and additionally tracks `drained_to` — the latest cycle up to
//! which a stall has forced the queue to drain. The invariant that no
//! pending entry is due at or before `drained_to` is exactly what the
//! drain-before-insert fix establishes: a buffer that stalls the
//! processor to cycle `now + stall` but leaves an already-due entry
//! queued would later coalesce new writes into data that has logically
//! reached L2.

/// The real write buffer's observable state, exported for the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealWriteBuffer {
    /// Entries currently pending.
    pub occupancy: usize,
    /// Writes absorbed (including coalesced).
    pub pushes: u64,
    /// Pushes that merged into a pending entry.
    pub coalesced: u64,
    /// Entries retired to L2.
    pub retired: u64,
    /// Total stall cycles charged.
    pub stall_cycles: u64,
    /// Retire cycle of every pending entry, in queue order.
    pub pending_ready: Vec<u64>,
}

/// Naive reference model of the coalescing write buffer.
#[derive(Debug, Clone)]
pub struct RefWriteBuffer {
    capacity: usize,
    service: u64,
    /// `(block, ready)` pairs in push order; `entries[head..]` is the
    /// pending queue, everything before `head` has retired.
    entries: Vec<(u64, u64)>,
    /// Index of the oldest pending entry. Draining advances this cursor
    /// instead of `remove(0)`-shifting the whole vector; the retired
    /// prefix is reclaimed whenever the queue empties.
    head: usize,
    port_free_at: u64,
    pushes: u64,
    coalesced: u64,
    retired: u64,
    stall_cycles: u64,
    /// Latest cycle the queue has been forced to drain through — no
    /// pending entry may ever be due at or before this.
    drained_to: u64,
}

impl RefWriteBuffer {
    /// An empty buffer of `capacity` entries with the given per-entry L2
    /// service latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, service: u64) -> Self {
        assert!(capacity > 0, "capacity");
        RefWriteBuffer {
            capacity,
            service,
            entries: Vec::new(),
            head: 0,
            port_free_at: 0,
            pushes: 0,
            coalesced: 0,
            retired: 0,
            stall_cycles: 0,
            drained_to: 0,
        }
    }

    /// The pending queue, oldest first.
    fn pending(&self) -> &[(u64, u64)] {
        &self.entries[self.head..]
    }

    fn drain(&mut self, now: u64) {
        while let Some(&(_, ready)) = self.entries.get(self.head) {
            if ready <= now {
                self.head += 1;
                self.retired += 1;
            } else {
                break;
            }
        }
        if self.head == self.entries.len() {
            // Queue empty: reclaim the retired prefix.
            self.entries.clear();
            self.head = 0;
        }
        self.drained_to = self.drained_to.max(now);
    }

    /// Mirrors a block write at cycle `now`; returns the stall charged.
    pub fn push(&mut self, now: u64, block: u64) -> u64 {
        self.pushes += 1;
        self.drain(now);
        if self.pending().iter().any(|&(a, _)| a == block) {
            self.coalesced += 1;
            return 0;
        }
        let mut stall = 0;
        if self.pending().len() == self.capacity {
            let (_, ready) = *self.pending().first().expect("capacity > 0");
            stall = ready.saturating_sub(now);
            self.stall_cycles += stall;
            // The processor resumes at `now + stall`: everything due by
            // then has reached L2 and must leave the queue first.
            self.drain(now + stall);
        }
        let start = self.port_free_at.max(now + stall);
        let ready = start + self.service;
        self.port_free_at = ready;
        self.entries.push((block, ready));
        stall
    }

    /// Diffs the real buffer's exported state against the model and
    /// asserts the drain invariant.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn check(&self, real: &RealWriteBuffer) -> Result<(), String> {
        // The drain invariant first: an entry still pending although it
        // was due inside an already-charged stall window is precisely the
        // pre-fix buffer state, whatever the counters say.
        if let Some(&due) = real.pending_ready.iter().find(|&&r| r <= self.drained_to) {
            return Err(format!(
                "write buffer holds an entry due at cycle {due} although the queue \
                 drained through cycle {} — a charged stall window left retired \
                 data queued",
                self.drained_to
            ));
        }
        let model = RealWriteBuffer {
            occupancy: self.pending().len(),
            pushes: self.pushes,
            coalesced: self.coalesced,
            retired: self.retired,
            stall_cycles: self.stall_cycles,
            pending_ready: self.pending().iter().map(|&(_, r)| r).collect(),
        };
        if *real != model {
            return Err(format!(
                "write buffer diverged:\n  real      {real:?}\n  reference {model:?}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn export(wb: &RefWriteBuffer) -> RealWriteBuffer {
        RealWriteBuffer {
            occupancy: wb.pending().len(),
            pushes: wb.pushes,
            coalesced: wb.coalesced,
            retired: wb.retired,
            stall_cycles: wb.stall_cycles,
            pending_ready: wb.pending().iter().map(|&(_, r)| r).collect(),
        }
    }

    #[test]
    fn mirrors_the_documented_stall_schedule() {
        let mut wb = RefWriteBuffer::new(2, 6);
        assert_eq!(wb.push(0, 0), 0); // ready 6
        assert_eq!(wb.push(0, 64), 0); // ready 12
        assert_eq!(wb.push(0, 128), 6); // full: head due at 6
        assert_eq!(wb.retired, 1);
        assert_eq!(wb.pending().len(), 2);
        assert_eq!(wb.push(8, 0), 4); // full again: head due at 12
        assert_eq!(wb.coalesced, 0);
        assert_eq!(wb.retired, 2);
        wb.check(&export(&wb)).unwrap();
    }

    #[test]
    fn check_flags_an_entry_due_inside_a_charged_stall() {
        let mut wb = RefWriteBuffer::new(2, 6);
        wb.push(0, 0);
        wb.push(0, 64);
        wb.push(0, 128); // drains through cycle 6
        let mut real = export(&wb);
        // The pre-fix buffer shape: the head (due at 6) never left.
        real.pending_ready.insert(0, 6);
        real.occupancy += 1;
        real.retired -= 1;
        let err = wb.check(&real).unwrap_err();
        assert!(err.contains("drained through cycle 6"), "{err}");
    }

    #[test]
    fn check_flags_counter_divergence() {
        let mut wb = RefWriteBuffer::new(2, 6);
        wb.push(0, 0);
        let mut real = export(&wb);
        real.coalesced += 1;
        let err = wb.check(&real).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn drains_in_fifo_order_and_retired_entries_never_coalesce() {
        let mut wb = RefWriteBuffer::new(4, 6);
        wb.push(0, 0); // ready 6
        wb.push(0, 64); // ready 12
        wb.push(0, 128); // ready 18
        assert_eq!(wb.pending().len(), 3);
        // A push long after the last retire cycle drains the whole queue
        // oldest-first, then re-queues block 0. The retired entry for
        // block 0 is still physically in the vector behind the head
        // cursor — it must count as gone: no coalesce, occupancy 1.
        assert_eq!(wb.push(100, 0), 0);
        assert_eq!(wb.retired, 3);
        assert_eq!(wb.coalesced, 0);
        assert_eq!(wb.pending(), &[(0, 106)]);
        wb.check(&export(&wb)).unwrap();
    }

    #[test]
    fn partial_drain_keeps_queue_order_behind_the_head_cursor() {
        let mut wb = RefWriteBuffer::new(4, 6);
        wb.push(0, 0); // ready 6
        wb.push(0, 64); // ready 12
        wb.push(0, 128); // ready 18
        wb.push(7, 192); // drains only the head (due at 6); ready 24
        assert_eq!(wb.retired, 1);
        assert_eq!(wb.pending(), &[(64, 12), (128, 18), (192, 24)]);
        // Block 64 is still pending: this push coalesces.
        assert_eq!(wb.push(7, 64), 0);
        assert_eq!(wb.coalesced, 1);
        wb.check(&export(&wb)).unwrap();
    }
}
