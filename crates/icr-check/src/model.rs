//! The naive reference dL1: §3 semantics in the most literal form
//! possible, diffed against the real cache's exported state.

use crate::write_buffer::{RealWriteBuffer, RefWriteBuffer};
use std::collections::HashMap;

/// Protection state of a line, as a plain enum ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefProtection {
    /// Parity (replicated blocks, and the parity-base schemes).
    Parity,
    /// SEC-DED (unreplicated blocks under the ECC schemes).
    SecDed,
}

/// Replica victim-selection policy (§3.1): which resident lines may be
/// displaced to make room for a replica. Primaries that are alive are
/// never displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefVictim {
    /// Only dead primaries, one pass.
    DeadOnly,
    /// Dead primaries first, then replicas.
    DeadFirst,
    /// Replicas first, then dead primaries.
    ReplicaFirst,
    /// Only replicas, one pass.
    ReplicaOnly,
}

/// Configuration of the write-through coalescing buffer (§5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefWriteBufferConfig {
    /// Buffer entries.
    pub capacity: usize,
    /// Cycles of L2 time per retiring entry.
    pub service_latency: u64,
}

/// Everything the reference model needs to know about the cache under
/// audit, in plain types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefConfig {
    /// Number of sets.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Block size in bytes (a power of two).
    pub block_bytes: u64,
    /// Whether the scheme replicates at all (ICR vs the Base* schemes).
    pub replicates: bool,
    /// Whether load misses also trigger replication (the `LS` trigger).
    pub replicate_on_load_miss: bool,
    /// Protection of unreplicated blocks (replicated blocks always use
    /// parity).
    pub unreplicated: RefProtection,
    /// Dead-block decay window in cycles (`0` = dead immediately).
    pub decay_window: u64,
    /// Replica victim policy.
    pub victim: RefVictim,
    /// Placement attempt list: signed set distances from the home set,
    /// tried in order.
    pub distances: Vec<i64>,
    /// Replica count ceiling per block.
    pub max_replicas: usize,
    /// §5.6 mode: replicas survive their primary's eviction and may
    /// serve later misses.
    pub keep_replicas_on_evict: bool,
    /// Capacity (in blocks) of the L2 spill region a `SpillToL2` scheme
    /// overflows into when no dL1 replica can be placed. `0` = the
    /// scheme keeps replicas in the dL1 only (every paper scheme).
    pub spill_capacity: usize,
    /// `Some` exactly when the dL1 is write-through (with its buffer).
    pub write_buffer: Option<RefWriteBufferConfig>,
}

impl RefConfig {
    fn block_of(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    fn set_of(&self, block: u64) -> usize {
        ((block / self.block_bytes) as usize) & (self.sets - 1)
    }

    fn candidate_sets(&self, home: usize) -> Vec<usize> {
        let n = self.sets as i64;
        self.distances
            .iter()
            .map(|&k| (home as i64 + k).rem_euclid(n) as usize)
            .collect()
    }
}

/// The 2-bit decay counter value, recomputed from scratch: one tick per
/// `window / 4` cycles for the first three ticks, saturation (3) exactly
/// at the full window. `window == 0` is always saturated.
pub fn ref_decay_counter(window: u64, last_access: u64, now: u64) -> u8 {
    if window == 0 {
        return 3;
    }
    let elapsed = now.saturating_sub(last_access);
    if elapsed >= window {
        3
    } else {
        let tick = (window / 4).max(1);
        ((elapsed / tick) as u8).min(2)
    }
}

/// Dead exactly when the counter has saturated.
pub fn ref_is_dead(window: u64, last_access: u64, now: u64) -> bool {
    ref_decay_counter(window, last_access, now) == 3
}

/// One valid line of the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefLine {
    /// Block address.
    pub addr: u64,
    /// Modified since fill.
    pub dirty: bool,
    /// Replica (vs primary).
    pub replica: bool,
    /// Current protection code.
    pub prot: RefProtection,
    /// Cycle of the last access (decay state).
    pub last_access: u64,
}

/// The statistics both sides must agree on, counter for counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Loads issued.
    pub read_accesses: u64,
    /// Loads that hit a resident primary.
    pub read_hits: u64,
    /// Stores issued.
    pub write_accesses: u64,
    /// Stores that hit a resident primary.
    pub write_hits: u64,
    /// Primary lines installed.
    pub fills: u64,
    /// Valid primaries displaced.
    pub evictions: u64,
    /// Dirty primaries written back.
    pub writebacks: u64,
    /// Replica lines installed.
    pub replicas_created: u64,
    /// Replica lines displaced or dropped.
    pub replica_evictions: u64,
    /// In-place replica updates on stores.
    pub replica_updates: u64,
    /// Replication attempts (triggering events with a nonzero target).
    pub replication_attempts: u64,
    /// Attempts that created at least one new replica.
    pub replication_with_one: u64,
    /// Attempts that left the block with two or more replicas.
    pub replication_with_two: u64,
    /// Load hits whose block had a replica at access time.
    pub read_hits_with_replica: u64,
    /// §5.6: load misses served by a surviving replica.
    pub misses_served_by_replica: u64,
    /// Spill tier: blocks inserted into the L2 replica region.
    pub spills_created: u64,
    /// Spill tier: in-place spilled-copy updates on stores.
    pub spill_updates: u64,
    /// Spill tier: spilled copies dropped (dirty writeback, promotion
    /// to a dL1 replica, or a write-through no-allocate store miss).
    pub spill_invalidations: u64,
    /// Spill tier: spilled copies displaced by region capacity.
    pub spill_evictions: u64,
    /// Spill tier: load misses served by the spilled copy.
    pub misses_served_by_spill: u64,
}

impl Counters {
    /// The counters as (name, value) pairs, for diffing with names.
    pub fn fields(&self) -> [(&'static str, u64); 20] {
        [
            ("read_accesses", self.read_accesses),
            ("read_hits", self.read_hits),
            ("write_accesses", self.write_accesses),
            ("write_hits", self.write_hits),
            ("fills", self.fills),
            ("evictions", self.evictions),
            ("writebacks", self.writebacks),
            ("replicas_created", self.replicas_created),
            ("replica_evictions", self.replica_evictions),
            ("replica_updates", self.replica_updates),
            ("replication_attempts", self.replication_attempts),
            ("replication_with_one", self.replication_with_one),
            ("replication_with_two", self.replication_with_two),
            ("read_hits_with_replica", self.read_hits_with_replica),
            ("misses_served_by_replica", self.misses_served_by_replica),
            ("spills_created", self.spills_created),
            ("spill_updates", self.spill_updates),
            ("spill_invalidations", self.spill_invalidations),
            ("spill_evictions", self.spill_evictions),
            ("misses_served_by_spill", self.misses_served_by_spill),
        ]
    }
}

/// One valid line of the real cache, as exported for the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealLine {
    /// Set index.
    pub set: usize,
    /// Way index.
    pub way: usize,
    /// Block address.
    pub addr: u64,
    /// Dirty bit.
    pub dirty: bool,
    /// Replica flag.
    pub replica: bool,
    /// Protection code on the stored words.
    pub prot: RefProtection,
    /// Decay state: cycle of the last access.
    pub last_access: u64,
    /// The 2-bit decay counter *as the real implementation computes it*.
    pub counter: u8,
    /// Deadness *as the real implementation computes it*.
    pub dead: bool,
}

/// A full observable-state snapshot of the real cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealState {
    /// Every valid line, in any order.
    pub lines: Vec<RealLine>,
    /// Per-set recency order, most-recently-used way first.
    pub recency: Vec<Vec<usize>>,
    /// Blocks resident in the L2 spill region, least-recently-*written*
    /// first (empty for every dL1-only scheme).
    pub spill: Vec<u64>,
    /// The statistics counters.
    pub counters: Counters,
    /// Write-buffer state (write-through configurations only).
    pub write_buffer: Option<RealWriteBuffer>,
}

/// One set's worth of exported real state, for the incremental diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealSetExport {
    /// The set index.
    pub set: usize,
    /// Every valid line of the set, in any order.
    pub lines: Vec<RealLine>,
    /// The set's recency order, most-recently-used way first.
    pub recency: Vec<usize>,
}

/// A partial snapshot of the real cache: the named sets only, plus the
/// global counters and write-buffer state (which every access can move).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealSets {
    /// One export per diffed set.
    pub sets: Vec<RealSetExport>,
    /// Blocks resident in the L2 spill region, least-recently-*written*
    /// first. Exported on every incremental check — any access can move
    /// the region, and the list is at most `spill_capacity` long.
    pub spill: Vec<u64>,
    /// The statistics counters.
    pub counters: Counters,
    /// Write-buffer state (write-through configurations only).
    pub write_buffer: Option<RealWriteBuffer>,
}

/// The naive reference dL1. Drive it with the same [`load`] / [`store`]
/// stream as the real cache, then [`check`] the real cache's exported
/// state after every access.
///
/// [`load`]: RefModel::load
/// [`store`]: RefModel::store
/// [`check`]: RefModel::check
#[derive(Debug, Clone)]
pub struct RefModel {
    cfg: RefConfig,
    /// `lines[set][way]`.
    lines: Vec<Vec<Option<RefLine>>>,
    /// Per-set way order, most-recently-used first.
    recency: Vec<Vec<usize>>,
    /// The replica ledger: block address → sets currently holding a
    /// replica of it. Redundant with the lines (and cross-checked
    /// against a scan on every diff) — that redundancy is the point.
    replica_map: HashMap<u64, Vec<usize>>,
    /// The spill ledger: blocks with a copy in the L2 replica region,
    /// least-recently-*written* first — the naive mirror of the
    /// region's write-stamp order (reads do not reorder it).
    spill: Vec<u64>,
    /// The model's own statistics.
    pub counters: Counters,
    wb: Option<RefWriteBuffer>,
    /// Counters seen at the previous check, for the monotonicity
    /// invariant.
    prev_counters: Option<Counters>,
    /// Sets whose model state changed since the last
    /// [`take_touched_sets`], in mutation order, duplicates included.
    /// The model performs the same transitions as the real cache, so
    /// this log names every set an in-sync real cache can have changed;
    /// a real-side change to a set the model never touched is caught by
    /// the periodic full [`check`].
    ///
    /// [`take_touched_sets`]: RefModel::take_touched_sets
    /// [`check`]: RefModel::check
    touched: Vec<usize>,
}

impl RefModel {
    /// An empty reference cache.
    ///
    /// # Panics
    ///
    /// Panics when the shape is degenerate (zero sets/ways, non-power-of-2
    /// sets or block size).
    pub fn new(cfg: RefConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.sets.is_power_of_two(), "sets");
        assert!(cfg.ways > 0, "ways");
        assert!(
            cfg.block_bytes > 0 && cfg.block_bytes.is_power_of_two(),
            "block bytes"
        );
        RefModel {
            lines: vec![vec![None; cfg.ways]; cfg.sets],
            recency: vec![(0..cfg.ways).collect(); cfg.sets],
            replica_map: HashMap::new(),
            spill: Vec::new(),
            counters: Counters::default(),
            wb: cfg
                .write_buffer
                .map(|w| RefWriteBuffer::new(w.capacity, w.service_latency)),
            cfg,
            prev_counters: None,
            touched: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RefConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Naive lookups: always a linear scan.
    // ------------------------------------------------------------------

    fn find_primary(&self, block: u64) -> Option<(usize, usize)> {
        let s = self.cfg.set_of(block);
        self.lines[s]
            .iter()
            .position(|l| matches!(l, Some(l) if !l.replica && l.addr == block))
            .map(|w| (s, w))
    }

    /// Replica locations by scanning the candidate sets, in placement
    /// order — the ground truth the [`replica_map`] ledger is checked
    /// against.
    ///
    /// [`replica_map`]: RefModel::check
    fn find_replicas(&self, block: u64) -> Vec<(usize, usize)> {
        let home = self.cfg.set_of(block);
        let mut out = Vec::new();
        for set in self.cfg.candidate_sets(home) {
            for (w, l) in self.lines[set].iter().enumerate() {
                if matches!(l, Some(l) if l.replica && l.addr == block) {
                    out.push((set, w));
                }
            }
        }
        out
    }

    fn has_replica(&self, block: u64) -> bool {
        if !self.cfg.replicates {
            return false;
        }
        self.replica_map.get(&block).is_some_and(|s| !s.is_empty())
    }

    fn is_spilled(&self, block: u64) -> bool {
        self.spill.contains(&block)
    }

    /// A block that just lost its last copy (dL1 replica or spilled)
    /// reverts a resident primary to the unreplicated code.
    fn demote_primary_if_bare(&mut self, block: u64) {
        if self.has_replica(block) || self.is_spilled(block) {
            return;
        }
        if let Some((ps, pw)) = self.find_primary(block) {
            let prot = self.cfg.unreplicated;
            self.lines[ps][pw].as_mut().expect("primary found").prot = prot;
            self.touched.push(ps);
        }
    }

    /// Mirrors `DataL1::spill_replica`: a copy enters at the
    /// most-recently-written end, displacing the least-recently-written
    /// block when the region is full.
    fn spill_insert(&mut self, block: u64) {
        debug_assert!(!self.spill.contains(&block), "duplicate spill");
        if self.spill.len() == self.cfg.spill_capacity {
            let evicted = self.spill.remove(0);
            self.counters.spill_evictions += 1;
            self.demote_primary_if_bare(evicted);
        }
        self.spill.push(block);
        self.counters.spills_created += 1;
    }

    /// Mirrors `DataL1::drop_spill`: removes the copy (if any) and
    /// reverts a now-bare resident primary to the unreplicated code.
    fn spill_invalidate(&mut self, block: u64) {
        let Some(pos) = self.spill.iter().position(|&b| b == block) else {
            return;
        };
        self.spill.remove(pos);
        self.counters.spill_invalidations += 1;
        self.demote_primary_if_bare(block);
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.touched.push(set);
        let order = &mut self.recency[set];
        let pos = order.iter().position(|&w| w == way).expect("way tracked");
        let w = order.remove(pos);
        order.insert(0, w);
    }

    // ------------------------------------------------------------------
    // State transitions, mirrored one for one from §3.
    // ------------------------------------------------------------------

    fn evict_line(&mut self, set: usize, way: usize) {
        let Some(line) = self.lines[set][way].take() else {
            return;
        };
        self.touched.push(set);
        if line.replica {
            self.counters.replica_evictions += 1;
            if let Some(sets) = self.replica_map.get_mut(&line.addr) {
                sets.retain(|&s| s != set);
                if sets.is_empty() {
                    self.replica_map.remove(&line.addr);
                }
            }
            // Last replica gone: a resident primary reverts to the
            // unreplicated code (unless a spilled copy still covers it).
            self.demote_primary_if_bare(line.addr);
        } else {
            self.counters.evictions += 1;
            if line.dirty {
                self.counters.writebacks += 1;
                // The written-back block is newer than its spilled copy:
                // the stale copy is dropped.
                self.spill_invalidate(line.addr);
            }
            // A *clean* eviction keeps the spilled copy — victim-cache
            // semantics; `keep_replicas_on_evict` governs the dL1 tier
            // only.
            if !self.cfg.keep_replicas_on_evict {
                for (rs, rw) in self.find_replicas(line.addr) {
                    self.lines[rs][rw] = None;
                    self.counters.replica_evictions += 1;
                    self.touched.push(rs);
                }
                self.replica_map.remove(&line.addr);
            }
        }
    }

    fn fill_primary(&mut self, block: u64, dirty: bool, now: u64) -> (usize, usize) {
        let s = self.cfg.set_of(block);
        let way = match self.lines[s].iter().position(|l| l.is_none()) {
            Some(w) => w,
            None => *self.recency[s].last().expect("ways > 0"),
        };
        self.evict_line(s, way);
        let prot = if self.has_replica(block) || self.is_spilled(block) {
            RefProtection::Parity
        } else {
            self.cfg.unreplicated
        };
        self.lines[s][way] = Some(RefLine {
            addr: block,
            dirty,
            replica: false,
            prot,
            last_access: now,
        });
        self.touch(s, way);
        self.counters.fills += 1;
        (s, way)
    }

    fn choose_replica_victim(&self, set: usize, block: u64, now: u64) -> Option<usize> {
        if let Some(w) = self.lines[set].iter().position(|l| l.is_none()) {
            return Some(w);
        }
        let dead_primary = |l: &RefLine| {
            l.addr != block && !l.replica && ref_is_dead(self.cfg.decay_window, l.last_access, now)
        };
        let replica = |l: &RefLine| l.addr != block && l.replica;
        let passes: [&dyn Fn(&RefLine) -> bool; 2] = match self.cfg.victim {
            RefVictim::DeadOnly => [&dead_primary, &|_: &RefLine| false],
            RefVictim::DeadFirst => [&dead_primary, &replica],
            RefVictim::ReplicaFirst => [&replica, &dead_primary],
            RefVictim::ReplicaOnly => [&replica, &|_: &RefLine| false],
        };
        for pass in passes {
            // LRU-first scan, restricted to the lines this pass allows.
            for &w in self.recency[set].iter().rev() {
                if self.lines[set][w].as_ref().is_some_and(pass) {
                    return Some(w);
                }
            }
        }
        None
    }

    fn attempt_replication(&mut self, block: u64, now: u64) {
        let Some((ps, pw)) = self.find_primary(block) else {
            return;
        };
        let home = self.cfg.set_of(block);
        let candidates = self.cfg.candidate_sets(home);
        let max = self.cfg.max_replicas.min(candidates.len());
        if max == 0 {
            return;
        }
        let was_spilled = self.is_spilled(block);
        let mut count = self.find_replicas(block).len();
        let had_none = count == 0;
        let count_before = count;
        for target in candidates {
            if count >= max {
                break;
            }
            // One replica per set.
            let already_here = self.lines[target]
                .iter()
                .any(|l| matches!(l, Some(l) if l.replica && l.addr == block));
            if already_here {
                continue;
            }
            if let Some(way) = self.choose_replica_victim(target, block, now) {
                self.evict_line(target, way);
                self.lines[target][way] = Some(RefLine {
                    addr: block,
                    dirty: false,
                    replica: true,
                    prot: RefProtection::Parity,
                    last_access: now,
                });
                self.replica_map.entry(block).or_default().push(target);
                self.touch(target, way);
                self.counters.replicas_created += 1;
                count += 1;
            }
        }
        let created_now = count - count_before;
        // A fresh dL1 replica promotes the block out of the spill tier
        // (the tiers are exclusive).
        if created_now > 0 && was_spilled {
            self.spill_invalidate(block);
        }
        // No dL1 replica placeable anywhere: spill into the L2 region.
        let spilled_now = self.cfg.spill_capacity > 0 && count == 0 && !was_spilled;
        if spilled_now {
            self.spill_insert(block);
        }
        // First copy of any kind: the primary switches to parity.
        if had_none && !was_spilled && (count > 0 || spilled_now) {
            self.lines[ps][pw].as_mut().expect("primary resident").prot = RefProtection::Parity;
            self.touched.push(ps);
        }
        self.counters.replication_attempts += 1;
        if created_now >= 1 || spilled_now {
            self.counters.replication_with_one += 1;
            if count >= 2 {
                self.counters.replication_with_two += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // The two access operations (fault-free paths of the real cache).
    // ------------------------------------------------------------------

    /// Mirrors a load of `addr` at cycle `now`.
    pub fn load(&mut self, addr: u64, now: u64) {
        let block = self.cfg.block_of(addr);
        self.counters.read_accesses += 1;
        if let Some((s, w)) = self.find_primary(block) {
            self.counters.read_hits += 1;
            if self.has_replica(block) || self.is_spilled(block) {
                self.counters.read_hits_with_replica += 1;
            }
            self.touch(s, w);
            self.lines[s][w].as_mut().expect("hit").last_access = now;
            return;
        }
        // Miss. In §5.6 mode a surviving replica can serve it.
        if self.cfg.keep_replicas_on_evict {
            if let Some(&(rs, rw)) = self.find_replicas(block).first() {
                self.counters.misses_served_by_replica += 1;
                self.touch(rs, rw);
                self.lines[rs][rw].as_mut().expect("replica").last_access = now;
                self.fill_primary(block, false, now);
                if self.cfg.replicate_on_load_miss {
                    self.attempt_replication(block, now);
                }
                return;
            }
        }
        // A spilled copy serves the miss from the L2 region (the model
        // is fault-free, so the verified read-back always succeeds).
        // Region reads deliberately do not refresh the recency stamp.
        if self.is_spilled(block) {
            self.counters.misses_served_by_spill += 1;
            self.fill_primary(block, false, now);
            if self.cfg.replicate_on_load_miss {
                self.attempt_replication(block, now);
            }
            return;
        }
        self.fill_primary(block, false, now);
        if self.cfg.replicate_on_load_miss {
            self.attempt_replication(block, now);
        }
    }

    /// Mirrors a store to `addr` at cycle `now`.
    pub fn store(&mut self, addr: u64, now: u64) {
        let block = self.cfg.block_of(addr);
        let write_through = self.cfg.write_buffer.is_some();
        self.counters.write_accesses += 1;
        match self.find_primary(block) {
            Some((s, w)) => {
                self.counters.write_hits += 1;
                let line = self.lines[s][w].as_mut().expect("hit");
                line.dirty = !write_through;
                line.last_access = now;
                self.touch(s, w);
            }
            None if !write_through => {
                // Write-allocate: fill clean, then dirty the line.
                let (s, w) = self.fill_primary(block, false, now);
                self.lines[s][w].as_mut().expect("filled").dirty = true;
            }
            None => {
                // Write-through no-allocate: nothing installed.
            }
        }
        if self.cfg.replicates && self.find_primary(block).is_some() {
            for (rs, rw) in self.find_replicas(block) {
                let line = self.lines[rs][rw].as_mut().expect("replica");
                line.last_access = now;
                self.touch(rs, rw);
                self.counters.replica_updates += 1;
            }
            // The spilled copy is updated in place, which refreshes its
            // write-recency stamp: the block moves to the MRU end.
            if let Some(pos) = self.spill.iter().position(|&b| b == block) {
                let b = self.spill.remove(pos);
                self.spill.push(b);
                self.counters.spill_updates += 1;
            }
            // Stores always trigger a replication attempt.
            self.attempt_replication(block, now);
        } else if self.is_spilled(block) {
            // Write-through no-allocate miss: the store bypassed the
            // dL1, so the spilled copy is stale and is dropped.
            self.spill_invalidate(block);
        }
        if let Some(wb) = &mut self.wb {
            wb.push(now, block);
        }
    }

    // ------------------------------------------------------------------
    // The diff.
    // ------------------------------------------------------------------

    /// Diffs the real cache's exported state against the model and
    /// asserts the conservation invariants. Call after every access,
    /// with the access's cycle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence or violated
    /// invariant.
    pub fn check(&mut self, now: u64, real: &RealState) -> Result<(), String> {
        self.check_counters(&real.counters)?;
        self.check_lines(now, real)?;
        self.check_recency(real)?;
        self.check_replica_invariants(real)?;
        self.check_spill_list(&real.spill)?;
        self.check_write_buffer(&real.write_buffer)?;
        self.prev_counters = Some(real.counters);
        // A clean full sweep covers every set: the incremental log is
        // stale from here on.
        self.touched.clear();
        Ok(())
    }

    /// Drains the sets touched since the last call into `out`, sorted
    /// and deduplicated. Pass the result to an exporter and then to
    /// [`check_touched`](RefModel::check_touched).
    pub fn take_touched_sets(&mut self, out: &mut Vec<usize>) {
        out.clear();
        out.append(&mut self.touched);
        out.sort_unstable();
        out.dedup();
    }

    /// Incremental diff: checks the global counters and write-buffer
    /// state (which every access can move), then diffs only the exported
    /// sets — intended to be exactly the sets named by
    /// [`take_touched_sets`](RefModel::take_touched_sets). The global
    /// ledger-vs-scan and replica/primary pairing invariants need the
    /// whole cache and are left to the periodic full
    /// [`check`](RefModel::check); per-line replica invariants (legal
    /// distance-k placement, parity, cleanliness) are still enforced
    /// here.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence or violated
    /// invariant.
    pub fn check_touched(&mut self, now: u64, real: &RealSets) -> Result<(), String> {
        self.check_counters(&real.counters)?;
        for se in &real.sets {
            self.check_set(now, se)?;
        }
        self.check_spill_list(&real.spill)?;
        self.check_write_buffer(&real.write_buffer)?;
        self.prev_counters = Some(real.counters);
        Ok(())
    }

    /// The exported spill-region occupancy must match the model's
    /// ledger exactly, *including* the write-recency order — a stale
    /// copy a missed invalidation left behind, a dropped insert, or a
    /// wrong eviction victim all surface here.
    fn check_spill_list(&self, real: &[u64]) -> Result<(), String> {
        if self.spill.as_slice() != real {
            return Err(format!(
                "spill region diverged:\n  real      {real:#x?}\n  reference {:#x?}",
                self.spill
            ));
        }
        Ok(())
    }

    fn check_write_buffer(&self, real: &Option<RealWriteBuffer>) -> Result<(), String> {
        match (&self.wb, real) {
            (Some(model_wb), Some(real_wb)) => model_wb.check(real_wb),
            (Some(_), None) => Err("model has a write buffer, real cache exports none".into()),
            (None, Some(_)) => Err("real cache exports a write buffer, model has none".into()),
            (None, None) => Ok(()),
        }
    }

    fn check_counters(&self, counters: &Counters) -> Result<(), String> {
        // Monotonicity: statistics never decrease between checks.
        if let Some(prev) = &self.prev_counters {
            for ((name, cur), (_, before)) in counters.fields().iter().zip(prev.fields()) {
                if *cur < before {
                    return Err(format!("counter {name} went backwards: {before} -> {cur}"));
                }
            }
        }
        // Conservation: hits never exceed accesses (misses = accesses -
        // hits stays meaningful).
        if counters.read_hits > counters.read_accesses {
            return Err(format!(
                "read_hits {} > read_accesses {}",
                counters.read_hits, counters.read_accesses
            ));
        }
        if counters.write_hits > counters.write_accesses {
            return Err(format!(
                "write_hits {} > write_accesses {}",
                counters.write_hits, counters.write_accesses
            ));
        }
        // Exact agreement with the model, counter for counter — this is
        // where a real hit the model predicts as a miss (or vice versa)
        // surfaces.
        for ((name, real_v), (_, model_v)) in counters.fields().iter().zip(self.counters.fields()) {
            if *real_v != model_v {
                return Err(format!(
                    "counter {name} diverged: real {real_v}, reference {model_v}"
                ));
            }
        }
        Ok(())
    }

    /// The per-line diff shared by the full and incremental checks:
    /// reference counterpart, field equality, and the decay cross-check.
    fn check_line(&self, now: u64, rl: &RealLine) -> Result<(), String> {
        let Some(ml) = &self.lines[rl.set][rl.way] else {
            return Err(format!(
                "real line ({}, {}) addr {:#x} has no reference counterpart",
                rl.set, rl.way, rl.addr
            ));
        };
        if (ml.addr, ml.dirty, ml.replica, ml.prot, ml.last_access)
            != (rl.addr, rl.dirty, rl.replica, rl.prot, rl.last_access)
        {
            return Err(format!(
                "line ({}, {}) diverged:\n  real      {rl:?}\n  reference {ml:?}",
                rl.set, rl.way
            ));
        }
        // Decay cross-check: the real counter/deadness must match the
        // from-scratch computation, and agree with each other.
        let want = ref_decay_counter(self.cfg.decay_window, ml.last_access, now);
        if rl.counter != want {
            return Err(format!(
                "line ({}, {}) decay counter diverged at cycle {now}: real {}, \
                 reference {want} (window {}, last access {})",
                rl.set, rl.way, rl.counter, self.cfg.decay_window, ml.last_access
            ));
        }
        if rl.dead != (rl.counter == 3) {
            return Err(format!(
                "line ({}, {}): dead={} but counter={} — saturation and deadness disagree",
                rl.set, rl.way, rl.dead, rl.counter
            ));
        }
        Ok(())
    }

    /// The incremental per-set diff: bidirectional line comparison,
    /// recency order, and the local (single-line) replica invariants.
    fn check_set(&self, now: u64, se: &RealSetExport) -> Result<(), String> {
        if se.set >= self.cfg.sets {
            return Err(format!("exported set {} out of range", se.set));
        }
        let mut seen = vec![false; self.cfg.ways];
        for rl in &se.lines {
            if rl.set != se.set {
                return Err(format!("line {rl:?} exported under set {}", se.set));
            }
            if rl.way >= self.cfg.ways {
                return Err(format!("exported line out of range: {rl:?}"));
            }
            if std::mem::replace(&mut seen[rl.way], true) {
                return Err(format!("line ({}, {}) exported twice", rl.set, rl.way));
            }
            self.check_line(now, rl)?;
            if rl.replica {
                let home = self.cfg.set_of(rl.addr);
                let candidates = self.cfg.candidate_sets(home);
                if !candidates.contains(&rl.set) {
                    return Err(format!(
                        "replica of {:#x} (home set {home}) found in set {}, \
                         not a legal distance-k candidate ({candidates:?})",
                        rl.addr, rl.set
                    ));
                }
                if rl.prot != RefProtection::Parity {
                    return Err(format!(
                        "replica of {:#x} in set {} is not parity-protected",
                        rl.addr, rl.set
                    ));
                }
                if rl.dirty {
                    return Err(format!(
                        "replica of {:#x} in set {} is dirty",
                        rl.addr, rl.set
                    ));
                }
            }
        }
        // Any model line of this set the real cache did not export is a
        // divergence.
        for (w, l) in self.lines[se.set].iter().enumerate() {
            if l.is_some() && !seen[w] {
                return Err(format!(
                    "reference line ({}, {w}) {l:?} missing from the real cache",
                    se.set
                ));
            }
        }
        if se.recency != self.recency[se.set] {
            return Err(format!(
                "set {} recency diverged: real {:?}, reference {:?}",
                se.set, se.recency, self.recency[se.set]
            ));
        }
        Ok(())
    }

    fn check_lines(&self, now: u64, real: &RealState) -> Result<(), String> {
        let mut seen = vec![vec![false; self.cfg.ways]; self.cfg.sets];
        for rl in &real.lines {
            if rl.set >= self.cfg.sets || rl.way >= self.cfg.ways {
                return Err(format!("exported line out of range: {rl:?}"));
            }
            if std::mem::replace(&mut seen[rl.set][rl.way], true) {
                return Err(format!("line ({}, {}) exported twice", rl.set, rl.way));
            }
            self.check_line(now, rl)?;
        }
        // Any model line the real cache did not export is a divergence.
        for (s, set) in self.lines.iter().enumerate() {
            for (w, l) in set.iter().enumerate() {
                if l.is_some() && !seen[s][w] {
                    return Err(format!(
                        "reference line ({s}, {w}) {l:?} missing from the real cache"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_recency(&self, real: &RealState) -> Result<(), String> {
        if real.recency.len() != self.cfg.sets {
            return Err(format!(
                "recency exported for {} sets, expected {}",
                real.recency.len(),
                self.cfg.sets
            ));
        }
        for (s, (real_order, model_order)) in
            real.recency.iter().zip(self.recency.iter()).enumerate()
        {
            if real_order != model_order {
                return Err(format!(
                    "set {s} recency diverged: real {real_order:?}, reference {model_order:?}"
                ));
            }
        }
        Ok(())
    }

    /// Replica pairing: every replica sits in a candidate set a legal
    /// `distance-k` from its home set, is parity-protected, has at most
    /// one copy per set, and (unless `keep_replicas_on_evict`) a live
    /// resident primary whose protection reflects the pairing. The
    /// `HashMap` ledger must agree with a fresh scan.
    fn check_replica_invariants(&self, real: &RealState) -> Result<(), String> {
        let mut scanned: HashMap<u64, Vec<usize>> = HashMap::new();
        for rl in &real.lines {
            if !rl.replica {
                continue;
            }
            let home = self.cfg.set_of(rl.addr);
            let candidates = self.cfg.candidate_sets(home);
            if !candidates.contains(&rl.set) {
                return Err(format!(
                    "replica of {:#x} (home set {home}) found in set {}, \
                     not a legal distance-k candidate ({candidates:?})",
                    rl.addr, rl.set
                ));
            }
            if rl.prot != RefProtection::Parity {
                return Err(format!(
                    "replica of {:#x} in set {} is not parity-protected",
                    rl.addr, rl.set
                ));
            }
            if rl.dirty {
                return Err(format!(
                    "replica of {:#x} in set {} is dirty",
                    rl.addr, rl.set
                ));
            }
            let sets = scanned.entry(rl.addr).or_default();
            if sets.contains(&rl.set) {
                return Err(format!(
                    "block {:#x} holds two replicas in set {}",
                    rl.addr, rl.set
                ));
            }
            sets.push(rl.set);
        }
        for (block, sets) in &scanned {
            if !self.cfg.keep_replicas_on_evict {
                let home = self.cfg.set_of(*block);
                let primary = real
                    .lines
                    .iter()
                    .find(|l| l.set == home && !l.replica && l.addr == *block);
                let Some(primary) = primary else {
                    return Err(format!(
                        "replicas of {block:#x} in sets {sets:?} have no live primary"
                    ));
                };
                if primary.prot != RefProtection::Parity {
                    return Err(format!(
                        "replicated primary {block:#x} is not parity-protected"
                    ));
                }
            }
        }
        // The tiers are exclusive: a spilled block holds no dL1 replica.
        for &block in &self.spill {
            if scanned.contains_key(&block) {
                return Err(format!(
                    "block {block:#x} sits in both tiers: dL1 replicas and a spilled copy"
                ));
            }
        }
        // Unreplicated primaries carry the scheme's code; a spilled
        // block's resident primary reads under parity (the spilled copy
        // backs it, so per-line SEC-DED would be wasted).
        for rl in &real.lines {
            if rl.replica {
                continue;
            }
            if self.is_spilled(rl.addr) {
                if rl.prot != RefProtection::Parity {
                    return Err(format!(
                        "spilled primary {:#x} has protection {:?}, expected Parity",
                        rl.addr, rl.prot
                    ));
                }
            } else if !scanned.contains_key(&rl.addr) && rl.prot != self.cfg.unreplicated {
                return Err(format!(
                    "unreplicated primary {:#x} has protection {:?}, expected {:?}",
                    rl.addr, rl.prot, self.cfg.unreplicated
                ));
            }
        }
        // The ledger agrees with the scan (order-insensitive).
        let mut ledger: Vec<(u64, Vec<usize>)> = self
            .replica_map
            .iter()
            .map(|(&b, s)| {
                let mut s = s.clone();
                s.sort_unstable();
                (b, s)
            })
            .collect();
        ledger.sort_unstable();
        let mut scan: Vec<(u64, Vec<usize>)> = scanned
            .into_iter()
            .map(|(b, mut s)| {
                s.sort_unstable();
                (b, s)
            })
            .collect();
        scan.sort_unstable();
        if ledger != scan {
            return Err(format!(
                "replica ledger diverged from scan:\n  ledger {ledger:?}\n  scan   {scan:?}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RefConfig {
        RefConfig {
            sets: 8,
            ways: 2,
            block_bytes: 64,
            replicates: true,
            replicate_on_load_miss: false,
            unreplicated: RefProtection::Parity,
            decay_window: 0,
            victim: RefVictim::DeadOnly,
            distances: vec![4],
            max_replicas: 1,
            keep_replicas_on_evict: false,
            spill_capacity: 0,
            write_buffer: None,
        }
    }

    /// A spill-tier configuration: SEC-DED base, live lines decay
    /// slowly, and the DeadOnly victim policy means a full candidate
    /// set blocks dL1 replication entirely.
    fn spill_cfg() -> RefConfig {
        RefConfig {
            unreplicated: RefProtection::SecDed,
            decay_window: 1000,
            spill_capacity: 2,
            ..cfg()
        }
    }

    /// Fills both ways of `set` with live (cycle-0) primaries directly,
    /// bypassing the access path so no replication side effects occur.
    fn pin_set_live(m: &mut RefModel, set: usize) {
        for w in 0..2 {
            let addr = 0x40 * (8 * (w as u64 + 1) + set as u64);
            m.lines[set][w] = Some(RefLine {
                addr,
                dirty: false,
                replica: false,
                prot: m.cfg.unreplicated,
                last_access: 0,
            });
            m.counters.fills += 1;
        }
    }

    /// A RealState assembled from the model itself: the trivially
    /// matching snapshot, as a harness for invariant tests.
    fn snapshot(m: &RefModel, now: u64) -> RealState {
        let mut lines = Vec::new();
        for (s, set) in m.lines.iter().enumerate() {
            for (w, l) in set.iter().enumerate() {
                if let Some(l) = l {
                    let counter = ref_decay_counter(m.cfg.decay_window, l.last_access, now);
                    lines.push(RealLine {
                        set: s,
                        way: w,
                        addr: l.addr,
                        dirty: l.dirty,
                        replica: l.replica,
                        prot: l.prot,
                        last_access: l.last_access,
                        counter,
                        dead: counter == 3,
                    });
                }
            }
        }
        RealState {
            lines,
            recency: m.recency.clone(),
            spill: m.spill.clone(),
            counters: m.counters,
            write_buffer: None,
        }
    }

    #[test]
    fn store_creates_a_distance_k_replica() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0); // block in set 1
        assert_eq!(m.counters.write_accesses, 1);
        assert_eq!(m.counters.fills, 1);
        assert_eq!(m.counters.replicas_created, 1);
        assert_eq!(m.counters.replication_with_one, 1);
        // Home set 1, distance 4 → replica in set 5.
        assert!(m.lines[5].iter().flatten().any(|l| l.replica));
        let snap = snapshot(&m, 0);
        assert!(m.clone().check(0, &snap).is_ok());
    }

    #[test]
    fn check_flags_a_doctored_dirty_bit() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut snap = snapshot(&m, 0);
        let primary = snap.lines.iter_mut().find(|l| !l.replica).unwrap();
        primary.dirty = false;
        let err = m.check(0, &snap).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn check_flags_an_illegal_replica_placement() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut snap = snapshot(&m, 0);
        // Teleport the replica to a non-candidate set in both the export
        // and the model, so the pairing invariant (not the line diff)
        // fires.
        let r = snap.lines.iter().position(|l| l.replica).unwrap();
        snap.lines[r].set = 6;
        let line = m.lines[5][snap.lines[r].way].take();
        m.lines[6][snap.lines[r].way] = line;
        snap.recency = m.recency.clone();
        let err = m.check(0, &snap).unwrap_err();
        assert!(err.contains("distance-k"), "{err}");
    }

    #[test]
    fn check_flags_counter_divergence() {
        let mut m = RefModel::new(cfg());
        m.load(0x80, 0);
        let mut snap = snapshot(&m, 0);
        snap.counters.read_hits += 1; // a phantom hit
        let err = m.check(0, &snap).unwrap_err();
        assert!(err.contains("read_hits"), "{err}");
    }

    #[test]
    fn check_flags_backwards_stats() {
        let mut m = RefModel::new(cfg());
        m.load(0x80, 0);
        let snap = snapshot(&m, 0);
        m.check(0, &snap).unwrap();
        m.load(0x80, 1);
        let mut snap2 = snapshot(&m, 1);
        snap2.counters.read_accesses = 0; // went backwards
        let err = m.check(1, &snap2).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    /// A RealSets assembled from the model itself for the named sets:
    /// the trivially matching partial snapshot.
    fn snapshot_sets(m: &RefModel, sets: &[usize], now: u64) -> RealSets {
        let full = snapshot(m, now);
        RealSets {
            sets: sets
                .iter()
                .map(|&s| RealSetExport {
                    set: s,
                    lines: full.lines.iter().filter(|l| l.set == s).copied().collect(),
                    recency: m.recency[s].clone(),
                })
                .collect(),
            spill: m.spill.clone(),
            counters: m.counters,
            write_buffer: None,
        }
    }

    #[test]
    fn touched_sets_cover_a_replicating_store() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0); // home set 1, replica in set 5
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        assert_eq!(touched, vec![1, 5]);
        // Drained: a second take is empty until the next access.
        m.take_touched_sets(&mut touched);
        assert!(touched.is_empty());
        m.load(0x40, 1);
        m.take_touched_sets(&mut touched);
        assert_eq!(touched, vec![1]); // a load hit touches only the home set
        m.store(0x40, 2);
        m.take_touched_sets(&mut touched);
        assert_eq!(touched, vec![1, 5]); // store hit updates the replica too
    }

    #[test]
    fn check_touched_accepts_a_matching_partial_snapshot() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        let snap = snapshot_sets(&m, &touched, 0);
        m.check_touched(0, &snap).unwrap();
    }

    #[test]
    fn check_touched_flags_a_doctored_line_in_a_touched_set() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        let mut snap = snapshot_sets(&m, &touched, 0);
        let line = snap.sets[0]
            .lines
            .iter_mut()
            .find(|l| !l.replica)
            .expect("primary in home set");
        line.dirty = false;
        let err = m.check_touched(0, &snap).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn check_touched_flags_a_missing_line() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        let mut snap = snapshot_sets(&m, &touched, 0);
        snap.sets[0].lines.clear();
        let err = m.check_touched(0, &snap).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn check_touched_flags_a_dirty_replica() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        let mut snap = snapshot_sets(&m, &touched, 0);
        // Doctor both sides identically so the line diff passes and the
        // local replica invariant is what fires.
        let se = snap.sets.iter_mut().find(|se| se.set == 5).unwrap();
        let rl = se.lines.iter_mut().find(|l| l.replica).unwrap();
        rl.dirty = true;
        m.lines[5][rl.way].as_mut().unwrap().dirty = true;
        let err = m.check_touched(0, &snap).unwrap_err();
        assert!(err.contains("dirty"), "{err}");
    }

    #[test]
    fn full_check_resets_the_touched_log() {
        let mut m = RefModel::new(cfg());
        m.store(0x40, 0);
        let snap = snapshot(&m, 0);
        m.check(0, &snap).unwrap();
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        assert!(touched.is_empty());
    }

    #[test]
    fn blocked_replication_spills_into_the_region() {
        let mut m = RefModel::new(spill_cfg());
        pin_set_live(&mut m, 5); // candidate set of home set 1
        m.store(0x40, 0);
        assert_eq!(m.counters.replicas_created, 0);
        assert_eq!(m.counters.spills_created, 1);
        assert_eq!(m.counters.replication_with_one, 1);
        assert_eq!(m.spill, vec![0x40]);
        // The primary reads under parity while the spilled copy covers it.
        let (ps, pw) = m.find_primary(0x40).unwrap();
        assert_eq!(m.lines[ps][pw].unwrap().prot, RefProtection::Parity);
        let snap = snapshot(&m, 0);
        assert!(m.clone().check(0, &snap).is_ok());
    }

    #[test]
    fn dirty_writeback_drops_the_stale_spilled_copy() {
        let mut m = RefModel::new(spill_cfg());
        pin_set_live(&mut m, 5);
        m.store(0x40, 0);
        assert_eq!(m.spill, vec![0x40]);
        // Two conflicting fills displace the dirty primary from set 1.
        m.load(0x40 * 9, 1);
        m.load(0x40 * 17, 2);
        assert_eq!(m.counters.writebacks, 1);
        assert_eq!(m.counters.spill_invalidations, 1);
        assert!(m.spill.is_empty());
        let snap = snapshot(&m, 2);
        assert!(m.clone().check(2, &snap).is_ok());
    }

    #[test]
    fn a_fresh_dl1_replica_promotes_the_block_out_of_the_region() {
        let mut m = RefModel::new(spill_cfg());
        pin_set_live(&mut m, 5);
        m.store(0x40, 0);
        assert_eq!(m.spill, vec![0x40]);
        // Past the decay window the pinned primaries are dead hosts, so
        // the next store places a real dL1 replica and drops the spill.
        m.store(0x44, 2000);
        assert_eq!(m.counters.replicas_created, 1);
        assert_eq!(m.counters.spill_updates, 1);
        assert_eq!(m.counters.spill_invalidations, 1);
        assert!(m.spill.is_empty());
        let snap = snapshot(&m, 2000);
        assert!(m.clone().check(2000, &snap).is_ok());
    }

    #[test]
    fn region_capacity_eviction_demotes_the_displaced_primary() {
        let mut m = RefModel::new(RefConfig {
            spill_capacity: 1,
            ..spill_cfg()
        });
        pin_set_live(&mut m, 5);
        pin_set_live(&mut m, 6);
        m.store(0x40, 0); // home 1 → candidate 5 blocked: spills
        m.store(0x80, 0); // home 2 → candidate 6 blocked: displaces 0x40
        assert_eq!(m.counters.spill_evictions, 1);
        assert_eq!(m.spill, vec![0x80]);
        // The displaced block's primary reverts to the scheme's code.
        let (ps, pw) = m.find_primary(0x40).unwrap();
        assert_eq!(m.lines[ps][pw].unwrap().prot, RefProtection::SecDed);
        let snap = snapshot(&m, 0);
        assert!(m.clone().check(0, &snap).is_ok());
    }

    #[test]
    fn a_spilled_copy_serves_a_clean_miss() {
        let mut m = RefModel::new(RefConfig {
            replicate_on_load_miss: true,
            spill_capacity: 4,
            ..spill_cfg()
        });
        pin_set_live(&mut m, 5);
        m.load(0x40, 1); // miss → clean fill → LS trigger spills
        assert_eq!(m.counters.spills_created, 1);
        // Conflicting fills displace the clean primary; the spilled
        // copies survive the clean evictions.
        m.load(0x40 * 9, 2);
        m.load(0x40 * 17, 3);
        assert_eq!(m.counters.writebacks, 0);
        assert!(m.is_spilled(0x40));
        // The next miss on the block is served from the region.
        m.load(0x40, 4);
        assert_eq!(m.counters.misses_served_by_spill, 1);
        let snap = snapshot(&m, 4);
        assert!(m.clone().check(4, &snap).is_ok());
    }

    #[test]
    fn check_flags_a_stale_spill_entry() {
        let mut m = RefModel::new(spill_cfg());
        pin_set_live(&mut m, 5);
        m.store(0x40, 0);
        let mut snap = snapshot(&m, 0);
        snap.spill.push(0xbc0); // a copy the model never spilled
        let err = m.check(0, &snap).unwrap_err();
        assert!(err.contains("spill region diverged"), "{err}");
    }

    #[test]
    fn check_flags_a_spilled_block_with_a_dl1_replica() {
        let mut m = RefModel::new(spill_cfg());
        m.store(0x40, 0); // candidate set 5 is free: a real dL1 replica
        assert_eq!(m.counters.replicas_created, 1);
        // Doctor both sides identically so the list diff passes and the
        // tier-exclusivity invariant is what fires.
        m.spill.push(0x40);
        let snap = snapshot(&m, 0);
        let err = m.check(0, &snap).unwrap_err();
        assert!(err.contains("both tiers"), "{err}");
    }

    #[test]
    fn check_touched_flags_a_doctored_spill_list() {
        let mut m = RefModel::new(spill_cfg());
        pin_set_live(&mut m, 5);
        m.store(0x40, 0);
        let mut touched = Vec::new();
        m.take_touched_sets(&mut touched);
        let mut snap = snapshot_sets(&m, &touched, 0);
        snap.spill.clear(); // the shape of a dropped insert
        let err = m.check_touched(0, &snap).unwrap_err();
        assert!(err.contains("spill region diverged"), "{err}");
    }

    #[test]
    fn dead_only_victims_never_displace_live_primaries() {
        let mut m = RefModel::new(RefConfig {
            decay_window: 1000,
            ..cfg()
        });
        // Fill both ways of set 5 with live primaries, then try to
        // replicate into it: no victim exists.
        m.store(0x40 * 5, 0);
        m.store(0x40 * (5 + 8), 1);
        let replicas_before = m.counters.replicas_created;
        m.store(0x40, 2); // home set 1, candidate set 5 is all live
        assert_eq!(m.counters.replicas_created, replicas_before);
        assert_eq!(m.counters.replication_attempts, 3);
        let snap = snapshot(&m, 2);
        assert!(m.check(2, &snap).is_ok());
    }
}
