//! Cross-crate functional-integrity tests: drive the replica-aware dL1
//! directly with interleaved accesses and faults, then audit the cache
//! contents against the memory system's golden state. These catch silent
//! data corruption that latency-level tests would miss.

use icr::core::{DataL1, DataL1Config, Scheme};
use icr::fault::{ErrorModel, FaultInjector};
use icr::mem::{Addr, HierarchyConfig, MemoryBackend};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn drive(
    dl1: &mut DataL1,
    backend: &mut MemoryBackend,
    injector: Option<&mut FaultInjector>,
    ops: usize,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inj = injector;
    for i in 0..ops {
        let now = i as u64 * 2;
        // A small hot region plus a wide cold one.
        let block = if rng.gen::<f64>() < 0.7 {
            rng.gen_range(0..48u64)
        } else {
            rng.gen_range(0..4096u64)
        };
        let addr = Addr(0x1000_0000 + block * 64 + rng.gen_range(0..8u64) * 8);
        if rng.gen::<f64>() < 0.3 {
            dl1.store(addr, now, backend);
        } else {
            dl1.load(addr, now, backend);
        }
        if let Some(inj) = inj.as_deref_mut() {
            inj.advance(dl1, backend, now, now + 2);
        }
    }
}

/// Every clean primary line must match the architectural (golden) value
/// held by L2/memory, under every scheme — no silent divergence.
#[test]
fn clean_lines_match_golden_state() {
    for scheme in Scheme::all_paper_schemes() {
        let mut backend = MemoryBackend::new(&HierarchyConfig::default());
        let mut dl1 = DataL1::new(DataL1Config::paper_default(scheme));
        drive(&mut dl1, &mut backend, None, 30_000, 7);
        let g = dl1.geometry();
        let mut checked = 0;
        for (s, w) in dl1.valid_lines() {
            let view = dl1.line_view(s, w).expect("valid");
            if view.is_replica || view.dirty {
                continue;
            }
            let golden = backend.golden_block(view.addr);
            for word in 0..g.words_per_block() {
                assert_eq!(
                    dl1.word_data(s, w, word),
                    Some(golden.word(word)),
                    "{}: clean line {} word {word} diverged",
                    scheme.name(),
                    view.addr
                );
            }
            checked += 1;
        }
        assert!(
            checked > 10,
            "{}: too few clean lines audited",
            scheme.name()
        );
    }
}

/// Replicas must stay word-for-word coherent with their primaries.
#[test]
fn replicas_stay_coherent_with_primaries() {
    let mut backend = MemoryBackend::new(&HierarchyConfig::default());
    let mut dl1 = DataL1::new(DataL1Config::aggressive(Scheme::ICR_P_PS_S));
    drive(&mut dl1, &mut backend, None, 30_000, 11);
    let g = dl1.geometry();
    let mut audited = 0;
    for (s, w) in dl1.valid_lines() {
        let view = dl1.line_view(s, w).expect("valid");
        if !view.is_replica {
            continue;
        }
        // Find the primary; in drop-replicas-with-primary mode it must
        // exist whenever the replica does.
        assert!(
            dl1.is_resident(Addr(view.addr.raw())),
            "replica of {} outlived its primary in drop mode",
            view.addr
        );
        let home = g.set_index(view.addr);
        let (ps, pw) = (0..g.associativity())
            .map(|way| (home.0, way))
            .find(|&(set, way)| {
                dl1.line_view(set, way)
                    .is_some_and(|v| !v.is_replica && v.addr == view.addr)
            })
            .expect("primary resident");
        for word in 0..g.words_per_block() {
            assert_eq!(
                dl1.word_data(s, w, word),
                dl1.word_data(ps, pw, word),
                "replica of {} diverged at word {word}",
                view.addr
            );
        }
        audited += 1;
    }
    assert!(audited > 5, "too few replicas audited ({audited})");
}

/// Under a fault storm with SEC-DED protection, the cache's own recovery
/// machinery keeps every *clean* line equal to golden once re-verified.
#[test]
fn secded_storm_leaves_no_silent_corruption_on_clean_lines() {
    let mut backend = MemoryBackend::new(&HierarchyConfig::default());
    let mut dl1 = DataL1::new(DataL1Config::paper_default(Scheme::BASE_ECC));
    let mut injector = FaultInjector::new(ErrorModel::Direct, 5e-3, 3);
    drive(&mut dl1, &mut backend, Some(&mut injector), 30_000, 13);
    assert!(injector.injected() > 50, "storm must actually strike");

    // Re-load every resident block through the public API: single-bit
    // faults must all be corrected or refetched, never silently returned.
    let g = dl1.geometry();
    let lines = dl1.valid_lines();
    let mut now = 1_000_000;
    for (s, w) in lines {
        let Some(view) = dl1.line_view(s, w) else {
            continue;
        };
        if view.is_replica {
            continue;
        }
        for word in 0..g.words_per_block() {
            dl1.load(Addr(view.addr.raw() + word as u64 * 8), now, &mut backend);
            now += 10;
        }
    }
    let stats = dl1.stats();
    assert!(
        stats.errors_corrected_ecc + stats.errors_recovered_l2 > 0,
        "recovery paths must have fired"
    );
    assert_eq!(
        stats.unrecoverable_loads, 0,
        "single-bit strikes under SEC-DED are always recoverable"
    );
    // And the surviving clean lines are golden again.
    for (s, w) in dl1.valid_lines() {
        let view = dl1.line_view(s, w).expect("valid");
        if view.dirty || view.is_replica {
            continue;
        }
        let golden = backend.golden_block(view.addr);
        for word in 0..g.words_per_block() {
            assert_eq!(dl1.word_data(s, w, word), Some(golden.word(word)));
        }
    }
}

/// Write-through mode: L2 always holds current data, so a parity error on
/// any line (dirty lines cannot exist) is recoverable.
#[test]
fn write_through_storm_is_fully_recoverable() {
    let mut cfg = DataL1Config::paper_default(Scheme::BASE_P);
    cfg.write_policy = icr::core::WritePolicy::WriteThrough { buffer_entries: 8 };
    let mut backend = MemoryBackend::new(&HierarchyConfig::default());
    let mut dl1 = DataL1::new(cfg);
    let mut injector = FaultInjector::new(ErrorModel::Direct, 5e-3, 17);
    drive(&mut dl1, &mut backend, Some(&mut injector), 30_000, 19);
    assert!(dl1.stats().errors_detected > 0, "storm must be noticed");
    assert_eq!(
        dl1.stats().unrecoverable_loads,
        0,
        "write-through keeps L2 current: nothing is ever lost"
    );
}

/// The dL1's line population always partitions into primaries + replicas,
/// and replicas never exceed what the placement policy allows.
#[test]
fn line_population_invariants() {
    let mut backend = MemoryBackend::new(&HierarchyConfig::default());
    let mut dl1 = DataL1::new(DataL1Config::aggressive(Scheme::ICR_P_PS_LS));
    drive(&mut dl1, &mut backend, None, 20_000, 23);
    let total = dl1.valid_lines().len();
    assert_eq!(
        dl1.primary_line_count() + dl1.replica_line_count(),
        total,
        "every valid line is exactly one of primary/replica"
    );
    let g = dl1.geometry();
    assert!(total <= g.num_sets() * g.associativity());
    // No block has more replicas than max_replicas.
    for (s, w) in dl1.valid_lines() {
        let view = dl1.line_view(s, w).expect("valid");
        if view.is_replica {
            continue;
        }
        let placement = dl1.config().placement.clone();
        let home = g.set_index(view.addr);
        let replica_count = placement
            .candidate_sets(g, home)
            .iter()
            .flat_map(|set| (0..g.associativity()).map(move |way| (set.0, way)))
            .filter(|&(set, way)| {
                dl1.line_view(set, way)
                    .is_some_and(|v| v.is_replica && v.addr == view.addr)
            })
            .count();
        assert!(replica_count <= placement.max_replicas);
    }
}
