//! Determinism gates: the same configuration and seed must produce
//! bit-identical results regardless of how many times the run repeats or
//! how many worker threads execute it. Every number the repo reports
//! depends on these invariants.

use icr::core::{DataL1Config, Scheme};
use icr::fault::ErrorModel;
use icr::sim::campaign::{run_campaign, CampaignSpec};
use icr::sim::exec::parallel_map_with_threads;
use icr::sim::{run_sim, FaultConfig, SimConfig};

/// A faulty ICR run, debug-formatted: `SimResult` carries every counter
/// the simulator produces, so equal strings mean equal runs.
fn faulty_run(seed: u64) -> String {
    let cfg = SimConfig::builder("gcc", DataL1Config::paper_default(Scheme::ICR_P_PS_S))
        .instructions(20_000)
        .seed(seed)
        .fault(FaultConfig {
            model: ErrorModel::Random,
            p_per_cycle: 1e-4,
            seed: seed ^ 0xD1CE,
            max_faults: None,
        })
        .build();
    format!("{:?}", run_sim(&cfg))
}

#[test]
fn same_config_and_seed_reproduce_the_simulation_exactly() {
    let first = faulty_run(7);
    assert_eq!(first, faulty_run(7), "repeat run diverged");
    assert_ne!(first, faulty_run(8), "seed must actually matter");
}

#[test]
fn parallel_map_is_thread_count_invariant() {
    let items: Vec<u64> = (0..257).collect();
    let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37) ^ 11).collect();
    for workers in [1, 2, 3, 8] {
        let got =
            parallel_map_with_threads(items.clone(), workers, |x| x.wrapping_mul(0x9E37) ^ 11);
        assert_eq!(got, expect, "workers={workers} permuted or lost results");
    }
}

/// The campaign acceptance gate: one spec, one master seed → one JSON
/// report, whether it runs on 1 thread, 2 threads, or every core, and
/// however often it is repeated.
#[test]
fn campaign_report_is_bit_identical_across_thread_counts() {
    let mut spec = CampaignSpec::new(
        vec![Scheme::BASE_P, Scheme::ICR_P_PS_S],
        vec!["gzip".into(), "mcf".into()],
        8,
        0xC0FFEE,
    );
    spec.instructions = 4_000;
    spec.batch = 4;

    let json_of = |threads: usize| {
        let mut s = spec.clone();
        s.threads = threads;
        run_campaign(&s).expect("campaign runs").to_json()
    };

    let single = json_of(1);
    assert_eq!(single, json_of(1), "repeat run diverged");
    assert_eq!(single, json_of(2), "2 threads diverged from 1");
    assert_eq!(single, json_of(0), "all cores diverged from 1");
}

/// Early stopping must not break thread-count invariance: stop decisions
/// happen at batch boundaries on merged tallies, which are identical
/// whatever the interleaving.
#[test]
fn early_stopped_campaign_is_still_thread_count_invariant() {
    let mut spec = CampaignSpec::new(vec![Scheme::BASE_ECC], vec!["gzip".into()], 24, 9);
    spec.instructions = 4_000;
    spec.batch = 6;
    spec.target_ci_width = Some(0.9);

    let json_of = |threads: usize| {
        let mut s = spec.clone();
        s.threads = threads;
        run_campaign(&s).expect("campaign runs").to_json()
    };
    let single = json_of(1);
    assert_eq!(single, json_of(2));
    assert_eq!(single, json_of(0));
}
