//! Cross-crate integration tests asserting the paper's qualitative
//! results hold on the assembled machine. These are the claims the
//! benchmark harness regenerates quantitatively; here they gate CI.

use icr::core::{DataL1Config, DecayConfig, PlacementPolicy, Scheme, VictimPolicy};
use icr::fault::ErrorModel;
use icr::sim::{run_sim, FaultConfig, SimConfig};

const N: u64 = 60_000;
const SEED: u64 = 42;

fn cycles(app: &str, dl1: DataL1Config) -> u64 {
    run_sim(&SimConfig::paper(app, dl1, N, SEED))
        .pipeline
        .cycles
}

/// §3.2/§5.2: the latency ordering of the four headline schemes.
#[test]
fn scheme_cycle_ordering_matches_figure_12() {
    for app in ["gzip", "vpr", "vortex"] {
        let base_p = cycles(app, DataL1Config::paper_default(Scheme::BASE_P));
        let icr_p = cycles(app, DataL1Config::paper_default(Scheme::ICR_P_PS_S));
        let icr_ecc = cycles(app, DataL1Config::paper_default(Scheme::ICR_ECC_PS_S));
        let base_ecc = cycles(app, DataL1Config::paper_default(Scheme::BASE_ECC));
        assert!(base_p <= icr_p, "{app}: BaseP must be fastest");
        assert!(icr_p < icr_ecc, "{app}: ICR-P-PS(S) beats ICR-ECC-PS(S)");
        assert!(icr_ecc < base_ecc, "{app}: ICR-ECC-PS(S) beats BaseECC");
    }
}

/// §5.2 Figure 7: the LS trigger covers more read hits than S, and both
/// cover well over half.
#[test]
fn ls_trigger_covers_more_loads_than_s() {
    for app in ["gzip", "mcf", "mesa"] {
        let s = run_sim(&SimConfig::paper(
            app,
            DataL1Config::aggressive(Scheme::ICR_P_PS_S),
            N,
            SEED,
        ));
        let ls = run_sim(&SimConfig::paper(
            app,
            DataL1Config::aggressive(Scheme::ICR_P_PS_LS),
            N,
            SEED,
        ));
        assert!(
            ls.icr.loads_with_replica() > s.icr.loads_with_replica(),
            "{app}: LS {:.2} must exceed S {:.2}",
            ls.icr.loads_with_replica(),
            s.icr.loads_with_replica()
        );
        assert!(
            ls.icr.loads_with_replica() > 0.8,
            "{app}: LS covers most hits"
        );
        assert!(
            s.icr.loads_with_replica() > 0.5,
            "{app}: S covers most hits"
        );
        assert!(
            ls.icr.replication_ability() > s.icr.replication_ability(),
            "{app}: Figure 6 ordering"
        );
    }
}

/// §5.1 Figure 4: maintaining two replicas costs misses.
#[test]
fn second_replica_costs_miss_rate() {
    let one = DataL1Config::aggressive(Scheme::ICR_P_PS_S);
    let mut two = one.clone();
    two.placement = PlacementPolicy::two_replicas(two.geometry);
    for app in ["mesa", "gzip"] {
        let r1 = run_sim(&SimConfig::paper(app, one.clone(), N, SEED));
        let r2 = run_sim(&SimConfig::paper(app, two.clone(), N, SEED));
        assert!(
            r2.icr.miss_rate() > 1.3 * r1.icr.miss_rate(),
            "{app}: two replicas must visibly worsen misses ({:.3} vs {:.3})",
            r2.icr.miss_rate(),
            r1.icr.miss_rate()
        );
    }
}

/// §5.5 Figure 14: recoverability ordering under random fault injection.
#[test]
fn error_recovery_ordering_matches_figure_14() {
    let fault = FaultConfig {
        model: ErrorModel::Random,
        p_per_cycle: 1e-2,
        seed: 9,
        max_faults: None,
    };
    let run = |scheme: Scheme| {
        run_sim(
            &SimConfig::builder("vortex", DataL1Config::paper_default(scheme))
                .instructions(N)
                .seed(SEED)
                .fault(fault)
                .build(),
        )
    };
    let base_p = run(Scheme::BASE_P);
    let icr_p = run(Scheme::ICR_P_PS_S);
    let icr_ecc = run(Scheme::ICR_ECC_PS_S);
    assert!(
        base_p.icr.unrecoverable_loads > 0,
        "the storm must hurt BaseP"
    );
    assert!(
        base_p.icr.unrecoverable_load_fraction() > 3.0 * icr_p.icr.unrecoverable_load_fraction(),
        "replicas must recover most of what BaseP loses ({} vs {})",
        base_p.icr.unrecoverable_loads,
        icr_p.icr.unrecoverable_loads
    );
    assert!(
        icr_ecc.icr.unrecoverable_load_fraction() <= icr_p.icr.unrecoverable_load_fraction(),
        "ECC on unreplicated lines can only help"
    );
    assert!(
        icr_p.icr.errors_recovered_replica > 0,
        "replicas actually used"
    );
    assert!(icr_ecc.icr.errors_corrected_ecc > 0, "ECC actually used");
}

/// §5.3 Figure 10: a longer decay window lowers replication ability but
/// barely moves replica coverage at the paper's chosen 1000 cycles.
#[test]
fn decay_window_tradeoff_matches_figure_10() {
    let mut w0 = DataL1Config::paper_default(Scheme::ICR_P_PS_S);
    w0.decay = DecayConfig { window: 0 };
    w0.victim = VictimPolicy::DeadOnly;
    let mut w1000 = w0.clone();
    w1000.decay = DecayConfig { window: 1000 };
    let r0 = run_sim(&SimConfig::paper("vpr", w0, N, SEED));
    let r1000 = run_sim(&SimConfig::paper("vpr", w1000, N, SEED));
    assert!(
        r0.icr.replication_ability() > r1000.icr.replication_ability(),
        "aggressive decay creates more replicas"
    );
    assert!(
        r1000.icr.loads_with_replica() > 0.85 * r0.icr.loads_with_replica(),
        "replica coverage barely moves: {:.2} vs {:.2}",
        r1000.icr.loads_with_replica(),
        r0.icr.loads_with_replica()
    );
    assert!(
        r1000.pipeline.cycles < r0.pipeline.cycles,
        "relaxed decay recovers performance"
    );
}

/// §5.6 Figure 15: leaving replicas behind on primary eviction never
/// hurts, and serves some misses cheaply.
#[test]
fn keep_replicas_mode_helps() {
    for app in ["mcf", "vpr"] {
        let drop = DataL1Config::paper_default(Scheme::ICR_P_PS_S);
        let mut keep = drop.clone();
        keep.keep_replicas_on_evict = true;
        let r_drop = run_sim(&SimConfig::paper(app, drop, N, SEED));
        let r_keep = run_sim(&SimConfig::paper(app, keep, N, SEED));
        assert!(
            r_keep.icr.misses_served_by_replica > 0,
            "{app}: serves happen"
        );
        assert!(
            r_keep.pipeline.cycles <= r_drop.pipeline.cycles,
            "{app}: keeping replicas must not cost cycles ({} vs {})",
            r_keep.pipeline.cycles,
            r_drop.pipeline.cycles
        );
    }
}

/// §5.1: "experiments with Distance-7 (a prime number)… were not any
/// different from those obtained in the Distance-N/2 case".
#[test]
fn distance_seven_matches_vertical_placement() {
    for app in ["gzip", "vortex"] {
        let vertical = DataL1Config::aggressive(Scheme::ICR_P_PS_S);
        let mut prime = vertical.clone();
        prime.placement = PlacementPolicy::single(7);
        let rv = run_sim(&SimConfig::paper(app, vertical, N, SEED));
        let rp = run_sim(&SimConfig::paper(app, prime, N, SEED));
        let dv = rv.icr.loads_with_replica();
        let dp = rp.icr.loads_with_replica();
        assert!(
            (dv - dp).abs() < 0.08,
            "{app}: distance-7 coverage {dp:.3} should match N/2 {dv:.3}"
        );
        let cyc_ratio = rp.pipeline.cycles as f64 / rv.pipeline.cycles as f64;
        assert!(
            (0.97..1.03).contains(&cyc_ratio),
            "{app}: distance-7 cycles within 3% of N/2, got {cyc_ratio:.3}"
        );
    }
}

/// §3.1's power-2 fallback chain is a valid placement policy end-to-end
/// and never loses to the single-attempt baseline on replica coverage.
#[test]
fn power2_fallback_never_hurts_coverage() {
    let single = DataL1Config::aggressive(Scheme::ICR_P_PS_S);
    let mut power2 = single.clone();
    power2.placement = PlacementPolicy::power2(32, 5);
    let rs = run_sim(&SimConfig::paper("mesa", single, N, SEED));
    let rp = run_sim(&SimConfig::paper("mesa", power2, N, SEED));
    assert!(
        rp.icr.replication_ability() >= rs.icr.replication_ability() - 0.02,
        "five fallback tries cannot create fewer replicas: {:.3} vs {:.3}",
        rp.icr.replication_ability(),
        rs.icr.replication_ability()
    );
    assert!(rp.icr.loads_with_replica() > 0.5);
}

/// Full-machine determinism: identical config ⇒ identical results.
#[test]
fn runs_are_deterministic() {
    let cfg = SimConfig::builder("parser", DataL1Config::paper_default(Scheme::ICR_ECC_PS_S))
        .instructions(30_000)
        .seed(123)
        .fault(FaultConfig {
            model: ErrorModel::Adjacent,
            p_per_cycle: 1e-3,
            seed: 5,
            max_faults: None,
        })
        .build();
    let a = run_sim(&cfg);
    let b = run_sim(&cfg);
    assert_eq!(a.pipeline, b.pipeline);
    assert_eq!(a.icr, b.icr);
    assert_eq!(a.l2, b.l2);
    assert_eq!(a.faults_injected, b.faults_injected);
}

/// Base schemes never replicate; ICR schemes always do (on these
/// store-bearing workloads).
#[test]
fn replication_happens_exactly_for_icr_schemes() {
    for scheme in Scheme::all_paper_schemes() {
        let r = run_sim(&SimConfig::paper(
            "gcc",
            DataL1Config::paper_default(scheme),
            20_000,
            SEED,
        ));
        if scheme.replicates() {
            assert!(r.icr.replicas_created > 0, "{}", scheme.name());
        } else {
            assert_eq!(r.icr.replicas_created, 0, "{}", scheme.name());
            assert_eq!(r.icr.read_hits_with_replica, 0, "{}", scheme.name());
        }
    }
}

/// The speculative-ECC variant recovers BaseECC's lost cycles (§5.9).
#[test]
fn speculative_ecc_recovers_performance() {
    let ecc = cycles("gzip", DataL1Config::paper_default(Scheme::BASE_ECC));
    let spec = cycles("gzip", DataL1Config::paper_default(Scheme::BASE_ECC_SPEC));
    let base = cycles("gzip", DataL1Config::paper_default(Scheme::BASE_P));
    assert!(spec < ecc, "speculation hides the ECC cycle");
    assert!(
        (spec as f64) < 1.02 * base as f64,
        "speculative ECC is within a whisker of BaseP"
    );
}
